// ADMM-regularized structured pruning (paper SSIII-A, following ADMM-NN).
//
// The constrained problem
//
//     minimize  F(W)   subject to   W in S
//
// with S = {conv weights with at most `keep_positions` live kernel
// positions} is split via ADMM into alternating steps:
//
//   W-update: SGD on F(W) + (rho/2) ||W - Z + U||^2   (a few epochs)
//   Z-update: Z = Proj_S(W + U)                        (top-k projection)
//   U-update: U = U + W - Z                            (dual ascent)
//
// After the final iteration the weights are hard-projected onto S, the
// shape mask is recorded on the layer, and the caller masked-finetunes.
#pragma once

#include "data/dataset.h"
#include "nn/conv.h"
#include "nn/model.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace ehdnn::cmp {

struct AdmmConfig {
  std::size_t keep_positions = 13;  // ~2x on a 5x5 kernel
  float rho = 5e-3f;
  int admm_iters = 3;        // outer W/Z/U alternations
  int epochs_per_iter = 1;   // SGD epochs per W-update
  int finetune_epochs = 1;   // masked finetuning after hard projection
  std::size_t batch_size = 16;
  train::SgdConfig sgd{.lr = 0.02f, .momentum = 0.9f, .weight_decay = 0.0f};
};

class AdmmPruner {
 public:
  // `target` must be a layer of `model`.
  AdmmPruner(nn::Conv2D& target, AdmmConfig cfg);

  // Runs the full ADMM schedule (training the whole model on `ds`),
  // hard-projects, masks and finetunes. Returns final train stats.
  train::EpochStats run(nn::Model& model, const data::Dataset& ds, Rng& rng);

  // ||W - Z||_F / ||W||_F just before the hard projection — how close the
  // ADMM iterates got to the constraint set (should shrink with iters).
  double final_violation() const { return final_violation_; }

 private:
  void z_update();
  void u_update();
  void add_penalty_grad(std::size_t batch_size);

  nn::Conv2D& conv_;
  AdmmConfig cfg_;
  std::vector<float> z_, u_;
  double final_violation_ = 0.0;
};

}  // namespace ehdnn::cmp
