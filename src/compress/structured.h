// Structured pruning primitives (paper SSII "Structured Pruning").
//
// The shape we implement is the paper's "filter shape" sparsity for
// Conv2D: a pruned kernel position (r, s) is zero across every filter and
// input channel, so the on-device window gather simply skips it for every
// window — no per-weight index storage (that is what makes the sparsity
// "hardware friendly"). Keeping 13 of 25 positions realizes the ~2x CONV
// compression of Table II's MNIST model.
#pragma once

#include <vector>

#include "nn/conv.h"

namespace ehdnn::cmp {

// L2 importance of each kernel position aggregated over filters and
// channels; row-major (kh*kw).
std::vector<double> position_importance(const nn::Conv2D& conv);

// Mask keeping the `keep` most important positions.
std::vector<bool> top_positions_mask(const nn::Conv2D& conv, std::size_t keep);

// Euclidean projection of the conv weights onto the "at most `keep` live
// kernel positions" set: zeroes everything outside the top-k positions and
// records the mask on the layer.
void project_shape_sparse(nn::Conv2D& conv, std::size_t keep);

// Achieved compression factor = total positions / live positions.
double shape_compression(const nn::Conv2D& conv);

}  // namespace ehdnn::cmp
