#include "compress/bcm.h"

#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace ehdnn::cmp {

std::unique_ptr<nn::BcmDense> project_to_bcm(const nn::Dense& dense, std::size_t block) {
  const std::size_t in = dense.in_features();
  const std::size_t out = dense.out_features();
  auto bcm = std::make_unique<nn::BcmDense>(in, out, block, !dense.bias().empty());

  const std::size_t k = block;
  const std::size_t in_pad = div_ceil(in, k) * k;
  const auto w = dense.weights();

  for (std::size_t bi = 0; bi < out / k; ++bi) {
    for (std::size_t bj = 0; bj < in_pad / k; ++bj) {
      auto col = bcm->first_col(bi, bj);
      // Mean along each wrapped diagonal d: positions (r, c) with
      // (r - c) mod k == d. Columns beyond the real input width are
      // zero-padding and do not contribute.
      for (std::size_t d = 0; d < k; ++d) {
        double sum = 0.0;
        std::size_t n = 0;
        for (std::size_t c = 0; c < k; ++c) {
          const std::size_t src_col = bj * k + c;
          if (src_col >= in) continue;
          const std::size_t r = (d + c) % k;
          sum += w[(bi * k + r) * in + src_col];
          ++n;
        }
        col[d] = n > 0 ? static_cast<float>(sum / static_cast<double>(n)) : 0.0f;
      }
    }
  }

  if (!dense.bias().empty()) {
    auto b = bcm->bias();
    for (std::size_t o = 0; o < out; ++o) b[o] = dense.bias()[o];
  }
  return bcm;
}

double bcm_projection_error(const nn::Dense& dense, std::size_t block) {
  auto bcm = project_to_bcm(dense, block);
  const auto wd = bcm->to_dense();
  const auto w = dense.weights();
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double d = static_cast<double>(w[i]) - wd[i];
    num += d * d;
    den += static_cast<double>(w[i]) * w[i];
  }
  return den > 0.0 ? std::sqrt(num / den) : 0.0;
}

std::size_t dense_storage_bytes(std::size_t rows, std::size_t cols, int bits) {
  return rows * cols * static_cast<std::size_t>(bits) / 8;
}

std::size_t bcm_storage_bytes(std::size_t rows, std::size_t cols, std::size_t block, int bits) {
  check(rows % block == 0, "bcm_storage_bytes: rows not divisible by block");
  const std::size_t cols_pad = div_ceil(cols, block) * block;
  const std::size_t n_blocks = (rows / block) * (cols_pad / block);
  return n_blocks * block * static_cast<std::size_t>(bits) / 8;
}

}  // namespace ehdnn::cmp
