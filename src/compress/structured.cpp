#include "compress/structured.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace ehdnn::cmp {

std::vector<double> position_importance(const nn::Conv2D& conv) {
  std::vector<double> imp(conv.kernel_h() * conv.kernel_w(), 0.0);
  for (std::size_t f = 0; f < conv.out_channels(); ++f) {
    for (std::size_t c = 0; c < conv.in_channels(); ++c) {
      for (std::size_t r = 0; r < conv.kernel_h(); ++r) {
        for (std::size_t s = 0; s < conv.kernel_w(); ++s) {
          const double w = conv.w(f, c, r, s);
          imp[r * conv.kernel_w() + s] += w * w;
        }
      }
    }
  }
  return imp;
}

std::vector<bool> top_positions_mask(const nn::Conv2D& conv, std::size_t keep) {
  check(keep >= 1 && keep <= conv.kernel_h() * conv.kernel_w(),
        "top_positions_mask: keep out of range");
  const auto imp = position_importance(conv);
  std::vector<std::size_t> order(imp.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return imp[a] > imp[b]; });
  std::vector<bool> mask(imp.size(), false);
  for (std::size_t i = 0; i < keep; ++i) mask[order[i]] = true;
  return mask;
}

void project_shape_sparse(nn::Conv2D& conv, std::size_t keep) {
  conv.set_shape_mask(top_positions_mask(conv, keep));
}

double shape_compression(const nn::Conv2D& conv) {
  return static_cast<double>(conv.kernel_h() * conv.kernel_w()) /
         static_cast<double>(conv.live_positions());
}

}  // namespace ehdnn::cmp
