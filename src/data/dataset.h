// Dataset container and the synthetic task generators.
//
// The paper evaluates on MNIST, UCI-HAR and Google Speech Commands (OKG).
// Those datasets are not available offline, so ehdnn ships deterministic
// synthetic generators with the same tensor shapes and class counts
// (DESIGN.md SS1 records the substitution). Each generator draws
// class-conditional structured patterns (strokes / periodic motions /
// formant tracks) plus controlled noise, producing tasks a LeNet-class
// model can learn into the paper's accuracy bands. All values land in
// [-1, 1], matching RAD's input normalization.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace ehdnn::data {

struct Dataset {
  std::vector<nn::Tensor> x;
  std::vector<int> y;
  std::size_t num_classes = 0;
  std::vector<std::size_t> sample_shape;

  std::size_t size() const { return x.size(); }
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

// MNIST-like: (1,28,28) images, 10 classes of stroke-built digit glyphs
// with random shift and pixel noise.
TrainTest make_mnist_like(Rng& rng, std::size_t n_train, std::size_t n_test);

// HAR-like: (1,121) inertial windows, 6 activity classes of sinusoid
// mixtures (class-specific frequency signatures) with jitter and drift.
// Window length 121 matches the paper's HAR model (121 - 12 + 1 = 110,
// 32 * 110 = 3520 flattened features; DESIGN.md SS3).
TrainTest make_har_like(Rng& rng, std::size_t n_train, std::size_t n_test);

// OKG-like: (1,28,28) MFCC-style spectrograms, 12 keyword classes of
// formant trajectories with time shift and babble noise.
TrainTest make_okg_like(Rng& rng, std::size_t n_train, std::size_t n_test);

}  // namespace ehdnn::data
