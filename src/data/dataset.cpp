#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ehdnn::data {

namespace {

// Clamp into the RAD-normalized activation range.
float clamp1(double v) { return static_cast<float>(std::clamp(v, -1.0, 1.0)); }

// Draw a polyline "stroke" glyph into a 28x28 canvas: the per-class
// prototype is a fixed set of control points; samples jitter them.
struct Glyph {
  std::vector<std::pair<double, double>> points;  // in [4, 24]^2
};

Glyph make_glyph(Rng& rng, int n_points) {
  Glyph g;
  double px = rng.uniform(6.0, 22.0);
  double py = rng.uniform(6.0, 22.0);
  g.points.push_back({px, py});
  for (int i = 1; i < n_points; ++i) {
    px = std::clamp(px + rng.uniform(-10.0, 10.0), 4.0, 24.0);
    py = std::clamp(py + rng.uniform(-10.0, 10.0), 4.0, 24.0);
    g.points.push_back({px, py});
  }
  return g;
}

void draw_segment(nn::Tensor& img, double x0, double y0, double x1, double y1) {
  const int steps = static_cast<int>(std::max(std::abs(x1 - x0), std::abs(y1 - y0)) * 2) + 2;
  for (int s = 0; s <= steps; ++s) {
    const double t = static_cast<double>(s) / steps;
    const double cx = x0 + t * (x1 - x0);
    const double cy = y0 + t * (y1 - y0);
    // Soft 2-pixel brush.
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int ix = static_cast<int>(cx) + dx;
        const int iy = static_cast<int>(cy) + dy;
        if (ix < 0 || ix >= 28 || iy < 0 || iy >= 28) continue;
        const double d2 = (cx - ix) * (cx - ix) + (cy - iy) * (cy - iy);
        const double ink = std::exp(-d2 / 0.8);
        float& px = img.at(0, static_cast<std::size_t>(iy), static_cast<std::size_t>(ix));
        px = static_cast<float>(std::min(1.0, px + ink));
      }
    }
  }
}

nn::Tensor render_glyph(const Glyph& g, Rng& rng, double jitter, double noise) {
  nn::Tensor img({1, 28, 28});
  const double sx = rng.uniform(-2.0, 2.0);  // random shift
  const double sy = rng.uniform(-2.0, 2.0);
  for (std::size_t i = 0; i + 1 < g.points.size(); ++i) {
    const auto [x0, y0] = g.points[i];
    const auto [x1, y1] = g.points[i + 1];
    draw_segment(img, x0 + sx + rng.gauss(0.0, jitter), y0 + sy + rng.gauss(0.0, jitter),
                 x1 + sx + rng.gauss(0.0, jitter), y1 + sy + rng.gauss(0.0, jitter));
  }
  // Map ink in [0,1] to [-1,1] and add pixel noise.
  for (std::size_t i = 0; i < img.size(); ++i) {
    img[i] = clamp1(2.0 * img[i] - 1.0 + rng.gauss(0.0, noise));
  }
  return img;
}

Dataset render_glyph_set(const std::vector<Glyph>& protos, Rng& rng, std::size_t n,
                         double jitter, double noise) {
  Dataset d;
  d.num_classes = protos.size();
  d.sample_shape = {1, 28, 28};
  d.x.reserve(n);
  d.y.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.below(protos.size()));
    d.x.push_back(render_glyph(protos[static_cast<std::size_t>(cls)], rng, jitter, noise));
    d.y.push_back(cls);
  }
  return d;
}

}  // namespace

TrainTest make_mnist_like(Rng& rng, std::size_t n_train, std::size_t n_test) {
  std::vector<Glyph> protos;
  for (int c = 0; c < 10; ++c) protos.push_back(make_glyph(rng, 4 + c % 3));
  TrainTest tt;
  tt.train = render_glyph_set(protos, rng, n_train, /*jitter=*/0.6, /*noise=*/0.15);
  tt.test = render_glyph_set(protos, rng, n_test, 0.6, 0.15);
  return tt;
}

TrainTest make_har_like(Rng& rng, std::size_t n_train, std::size_t n_test) {
  constexpr std::size_t kLen = 121;
  constexpr std::size_t kClasses = 6;

  // Class signatures: (frequency, amplitude) pairs. Neighbouring classes
  // share a component so the task is not trivially separable — this is
  // what keeps accuracy in the high-80s band the paper reports for HAR.
  struct Sig {
    double f1, a1, f2, a2;
  };
  std::vector<Sig> sigs;
  for (std::size_t c = 0; c < kClasses; ++c) {
    sigs.push_back({0.02 + 0.013 * static_cast<double>(c), 0.55,
                    0.05 + 0.011 * static_cast<double>((c + 1) % kClasses), 0.3});
  }

  auto gen = [&](std::size_t n) {
    Dataset d;
    d.num_classes = kClasses;
    d.sample_shape = {1, kLen};
    for (std::size_t i = 0; i < n; ++i) {
      const int cls = static_cast<int>(rng.below(kClasses));
      const Sig& s = sigs[static_cast<std::size_t>(cls)];
      const double ph1 = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double ph2 = rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double drift = rng.uniform(-0.15, 0.15);
      nn::Tensor t({1, kLen});
      for (std::size_t j = 0; j < kLen; ++j) {
        const double x = static_cast<double>(j);
        double v = s.a1 * std::sin(2.0 * std::numbers::pi * s.f1 * x + ph1) +
                   s.a2 * std::sin(2.0 * std::numbers::pi * s.f2 * x + ph2) +
                   drift * (x / kLen) + rng.gauss(0.0, 0.22);
        t.at(0, j) = clamp1(v);
      }
      d.x.push_back(std::move(t));
      d.y.push_back(cls);
    }
    return d;
  };

  TrainTest tt;
  tt.train = gen(n_train);
  tt.test = gen(n_test);
  return tt;
}

TrainTest make_okg_like(Rng& rng, std::size_t n_train, std::size_t n_test) {
  constexpr std::size_t kClasses = 12;  // 10 keywords + silence + unknown

  // Per-class formant tracks: start/end rows of two frequency bands that
  // sweep across the 28 time frames.
  struct Formant {
    double f1_start, f1_end, f2_start, f2_end;
  };
  std::vector<Formant> protos;
  for (std::size_t c = 0; c < kClasses; ++c) {
    protos.push_back({rng.uniform(3.0, 24.0), rng.uniform(3.0, 24.0),
                      rng.uniform(3.0, 24.0), rng.uniform(3.0, 24.0)});
  }

  auto gen = [&](std::size_t n) {
    Dataset d;
    d.num_classes = kClasses;
    d.sample_shape = {1, 28, 28};
    for (std::size_t i = 0; i < n; ++i) {
      const int cls = static_cast<int>(rng.below(kClasses));
      const Formant& f = protos[static_cast<std::size_t>(cls)];
      nn::Tensor t({1, 28, 28});
      const double shift = rng.uniform(-2.0, 2.0);  // temporal misalignment
      const double wobble = rng.uniform(0.5, 1.5);
      for (std::size_t time = 0; time < 28; ++time) {
        const double u = static_cast<double>(time) / 27.0;
        const double c1 = f.f1_start + u * (f.f1_end - f.f1_start) + shift;
        const double c2 = f.f2_start + u * (f.f2_end - f.f2_start) + shift;
        for (std::size_t freq = 0; freq < 28; ++freq) {
          const double d1 = (static_cast<double>(freq) - c1) / (1.2 * wobble);
          const double d2 = (static_cast<double>(freq) - c2) / (1.6 * wobble);
          double v = 0.9 * std::exp(-d1 * d1) + 0.6 * std::exp(-d2 * d2);
          v += rng.gauss(0.0, 0.30);  // babble noise drives the ~82% band
          t.at(0, freq, time) = clamp1(2.0 * v - 1.0);
        }
      }
      d.x.push_back(std::move(t));
      d.y.push_back(cls);
    }
    return d;
  };

  TrainTest tt;
  tt.train = gen(n_train);
  tt.test = gen(n_test);
  return tt;
}

}  // namespace ehdnn::data
