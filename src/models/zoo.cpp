#include "models/zoo.h"

#include "nn/bcm_dense.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/simple_layers.h"
#include "quant/quantize.h"
#include "util/check.h"

namespace ehdnn::models {

const char* task_name(Task t) {
  switch (t) {
    case Task::kMnist: return "MNIST";
    case Task::kHar: return "HAR";
    case Task::kOkg: return "OKG";
  }
  return "?";
}

Task parse_task(const std::string& name) {
  if (name == "mnist") return Task::kMnist;
  if (name == "har") return Task::kHar;
  if (name == "okg") return Task::kOkg;
  fail("unknown task \"" + name + "\" (mnist|har|okg)");
}

ModelInfo model_info(Task t) {
  switch (t) {
    case Task::kMnist:
      return {t, {1, 28, 28}, 10, /*pruned_conv_layer=*/3, /*keep=*/13};
    case Task::kHar:
      return {t, {1, 121}, 6, -1, 0};
    case Task::kOkg:
      return {t, {1, 28, 28}, 12, -1, 0};
  }
  fail("model_info: unknown task");
}

nn::Model make_mnist_model(Rng& rng, ModelInfo* info) {
  nn::Model m;
  auto* c1 = m.add<nn::Conv2D>(1, 6, 5, 5);        // 0: 28x28 -> 24x24x6
  m.add<nn::ReLU>();                               // 1
  m.add<nn::MaxPool2D>();                          // 2: -> 12x12x6
  auto* c2 = m.add<nn::Conv2D>(6, 16, 5, 5);       // 3: -> 8x8x16 (pruned ~2x)
  m.add<nn::ReLU>();                               // 4
  m.add<nn::MaxPool2D>();                          // 5: -> 4x4x16
  m.add<nn::Flatten>();                            // 6: -> 256
  auto* f1 = m.add<nn::BcmDense>(256, 256, 128);   // 7: BCM 128x
  m.add<nn::ReLU>();                               // 8
  auto* f2 = m.add<nn::Dense>(256, 10);            // 9
  c1->init(rng);
  c2->init(rng);
  f1->init(rng);
  f2->init(rng);
  if (info != nullptr) *info = model_info(Task::kMnist);
  return m;
}

nn::Model make_har_model(Rng& rng, ModelInfo* info) {
  nn::Model m;
  auto* c1 = m.add<nn::Conv1D>(1, 32, 12);          // 0: (1,121) -> (32,110)
  m.add<nn::ReLU>();                                // 1
  m.add<nn::Flatten>();                             // 2: -> 3520
  auto* f1 = m.add<nn::BcmDense>(3520, 128, 128);   // 3: BCM 128x (pads to 3584)
  m.add<nn::ReLU>();                                // 4
  auto* f2 = m.add<nn::BcmDense>(128, 64, 64);      // 5: BCM 64x
  m.add<nn::ReLU>();                                // 6
  auto* f3 = m.add<nn::Dense>(64, 6);               // 7
  c1->init(rng);
  f1->init(rng);
  f2->init(rng);
  f3->init(rng);
  if (info != nullptr) *info = model_info(Task::kHar);
  return m;
}

nn::Model make_okg_model(Rng& rng, ModelInfo* info) {
  nn::Model m;
  auto* c1 = m.add<nn::Conv2D>(1, 6, 5, 5);         // 0: (1,28,28) -> (6,24,24)
  m.add<nn::ReLU>();                                // 1
  m.add<nn::Flatten>();                             // 2: -> 3456
  auto* f1 = m.add<nn::BcmDense>(3456, 512, 256);   // 3: BCM 256x (pads to 3584)
  m.add<nn::ReLU>();                                // 4
  auto* f2 = m.add<nn::BcmDense>(512, 256, 128);    // 5: BCM 128x
  m.add<nn::ReLU>();                                // 6
  auto* f3 = m.add<nn::BcmDense>(256, 128, 64);     // 7: BCM 64x
  m.add<nn::ReLU>();                                // 8
  auto* f4 = m.add<nn::Dense>(128, 12);             // 9
  c1->init(rng);
  f1->init(rng);
  f2->init(rng);
  f3->init(rng);
  f4->init(rng);
  if (info != nullptr) *info = model_info(Task::kOkg);
  return m;
}

nn::Model make_model(Task t, Rng& rng, ModelInfo* info) {
  switch (t) {
    case Task::kMnist: return make_mnist_model(rng, info);
    case Task::kHar: return make_har_model(rng, info);
    case Task::kOkg: return make_okg_model(rng, info);
  }
  fail("make_model: unknown task");
}

nn::Model make_mnist_dense(Rng& rng) {
  nn::Model m;
  auto* c1 = m.add<nn::Conv2D>(1, 6, 5, 5);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  auto* c2 = m.add<nn::Conv2D>(6, 16, 5, 5);
  m.add<nn::ReLU>();
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  auto* f1 = m.add<nn::Dense>(256, 256);
  m.add<nn::ReLU>();
  auto* f2 = m.add<nn::Dense>(256, 10);
  c1->init(rng);
  c2->init(rng);
  f1->init(rng);
  f2->init(rng);
  return m;
}

nn::Model make_har_dense(Rng& rng) {
  nn::Model m;
  auto* c1 = m.add<nn::Conv1D>(1, 32, 12);
  m.add<nn::ReLU>();
  m.add<nn::Flatten>();
  auto* f1 = m.add<nn::Dense>(3520, 128);
  m.add<nn::ReLU>();
  auto* f2 = m.add<nn::Dense>(128, 64);
  m.add<nn::ReLU>();
  auto* f3 = m.add<nn::Dense>(64, 6);
  c1->init(rng);
  f1->init(rng);
  f2->init(rng);
  f3->init(rng);
  return m;
}

nn::Model make_okg_dense(Rng& rng) {
  nn::Model m;
  auto* c1 = m.add<nn::Conv2D>(1, 6, 5, 5);
  m.add<nn::ReLU>();
  m.add<nn::Flatten>();
  auto* f1 = m.add<nn::Dense>(3456, 512);
  m.add<nn::ReLU>();
  auto* f2 = m.add<nn::Dense>(512, 256);
  m.add<nn::ReLU>();
  auto* f3 = m.add<nn::Dense>(256, 128);
  m.add<nn::ReLU>();
  auto* f4 = m.add<nn::Dense>(128, 12);
  c1->init(rng);
  f1->init(rng);
  f2->init(rng);
  f3->init(rng);
  f4->init(rng);
  return m;
}

nn::Model make_dense_model(Task t, Rng& rng) {
  switch (t) {
    case Task::kMnist: return make_mnist_dense(rng);
    case Task::kHar: return make_har_dense(rng);
    case Task::kOkg: return make_okg_dense(rng);
  }
  fail("make_dense_model: unknown task");
}

nn::Model make_lenet5(Rng& rng) {
  // The Fig. 3 dataflow example: two conv/pool stages and two FCs, the
  // first FC BCM-compressed.
  nn::Model m;
  auto* c1 = m.add<nn::Conv2D>(1, 6, 5, 5);
  m.add<nn::MaxPool2D>();
  auto* c2 = m.add<nn::Conv2D>(6, 16, 5, 5);
  m.add<nn::MaxPool2D>();
  m.add<nn::Flatten>();
  auto* f1 = m.add<nn::BcmDense>(256, 256, 64);
  m.add<nn::ReLU>();
  auto* f2 = m.add<nn::Dense>(256, 10);
  c1->init(rng);
  c2->init(rng);
  f1->init(rng);
  f2->init(rng);
  return m;
}

quant::QuantModel make_deployed_qmodel(Task t, bool compressed, Rng& rng) {
  const ModelInfo info = model_info(t);
  nn::Model m = compressed ? make_model(t, rng) : make_dense_model(t, rng);
  if (compressed && info.pruned_conv_layer >= 0) {
    auto* conv =
        dynamic_cast<nn::Conv2D*>(&m.layer(static_cast<std::size_t>(info.pruned_conv_layer)));
    if (conv != nullptr) {
      std::vector<bool> mask(conv->kernel_h() * conv->kernel_w(), false);
      for (std::size_t i = 0; i < info.prune_keep_positions; ++i) mask[i] = true;
      conv->set_shape_mask(mask);
    }
  }
  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) {
    nn::Tensor tensor(info.input_shape);
    for (std::size_t j = 0; j < tensor.size(); ++j) {
      tensor[j] = static_cast<float>(rng.uniform(-0.9, 0.9));
    }
    calib.push_back(std::move(tensor));
  }
  quant::QuantizeOptions qo;
  qo.model_name = task_name(t);
  return quant::quantize(m, calib, info.input_shape, qo);
}

dev::DeviceConfig deployment_device_config(bool compressed) {
  dev::DeviceConfig cfg;
  if (!compressed) cfg.fram_words = 8 * 1024 * 1024;
  return cfg;
}

}  // namespace ehdnn::models
