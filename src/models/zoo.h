// The paper's DNN models (Table II) plus the LeNet-5 of Fig. 3, built with
// the exact layer shapes, and their compression plans.
//
//  MNIST: Conv 6@5x5 -> pool -> Conv 16@5x5 (shape-pruned ~2x) -> pool ->
//         FC 256x256 (BCM k=128) -> FC 256x10
//  HAR:   Conv1D 32@12 over (1,121) -> FC 3520x128 (BCM k=128) ->
//         FC 128x64 (BCM k=64) -> FC 64x6
//  OKG:   Conv 6@5x5 over (1,28,28) -> FC 3456x512 (BCM k=256) ->
//         FC 512x256 (BCM k=128) -> FC 256x128 (BCM k=64) -> FC 128x12
//
// Input-shape choices that the paper leaves implicit are documented in
// DESIGN.md SS3.
#pragma once

#include <string>

#include "device/device.h"
#include "nn/model.h"
#include "quant/qmodel.h"

namespace ehdnn::models {

enum class Task { kMnist, kHar, kOkg };

const char* task_name(Task t);

// CLI/config-facing task keys ("mnist"|"har"|"okg"); throws ehdnn::Error
// on anything else. Shared by scenario_runner, fleet_runner, and the
// fleet config parser so the accepted names cannot drift.
Task parse_task(const std::string& name);

struct ModelInfo {
  Task task;
  std::vector<std::size_t> input_shape;
  std::size_t num_classes;
  // Index of the Conv2D layer that receives structured pruning (or -1).
  int pruned_conv_layer = -1;
  std::size_t prune_keep_positions = 0;
};

// Compressed (deployment) models exactly as Table II describes. `rng`
// seeds weight initialization; training happens afterwards.
nn::Model make_mnist_model(Rng& rng, ModelInfo* info = nullptr);
nn::Model make_har_model(Rng& rng, ModelInfo* info = nullptr);
nn::Model make_okg_model(Rng& rng, ModelInfo* info = nullptr);
nn::Model make_model(Task t, Rng& rng, ModelInfo* info = nullptr);

// Uncompressed twins (plain Dense everywhere, no pruning): what the
// SONIC/TAILS baselines execute (they have no BCM support), and the
// "Original Size" column of Table II.
nn::Model make_mnist_dense(Rng& rng);
nn::Model make_har_dense(Rng& rng);
nn::Model make_okg_dense(Rng& rng);
nn::Model make_dense_model(Task t, Rng& rng);

// LeNet-5-style model of Fig. 3 (quickstart / dataflow example).
nn::Model make_lenet5(Rng& rng);

ModelInfo model_info(Task t);

// Deployment-ready quantized instance of a zoo model: builds the network
// (`compressed` selects the Table II BCM/pruned deployment model vs the
// dense baseline twin), applies the structured-pruning mask, calibrates
// on RAD-normalized random tensors, and quantizes. Shared by the paper
// benches and the scenario engine so both sweep the same instances.
// Timing/energy are data-independent (fixed loop bounds), so random
// weights measure exactly what trained ones would; accuracy is Table II's
// job.
quant::QuantModel make_deployed_qmodel(Task t, bool compressed, Rng& rng);

// Device geometry the deployed models run on. The uncompressed HAR/OKG
// twins exceed the real board's 256 KB FRAM (itself a headline result —
// EXPERIMENTS.md), so baselines execute on a virtually enlarged FRAM to
// keep their time/energy measurable. One definition, shared by the paper
// benches and the scenario engine, so their cells stay comparable.
dev::DeviceConfig deployment_device_config(bool compressed);

}  // namespace ehdnn::models
