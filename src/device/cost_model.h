// Cycle and energy cost model for the MSP430FR5994-class target.
//
// Constants are derived from public TI documentation:
//   * MSP430FR5994 datasheet (SLASE54): active-mode supply current
//     ~118 uA/MHz at 3.0 V -> ~5.7 mW at 16 MHz; FRAM reads insert wait
//     states above 8 MHz; FRAM write energy is a few times SRAM's.
//   * LEA application report (SLAA720): LEA completes vector ops in
//     ~1 cycle/element with a fixed command-issue overhead, adding roughly
//     a third of the CPU's active power while running, and the CPU can
//     sleep meanwhile.
//   * DMA: ~2 cycles/word transferred plus a small setup cost.
//
// Absolute joules are NOT claimed to match the authors' EnergyTrace
// measurements; what matters for the reproduction is that the *relative*
// costs (CPU MAC vs LEA MAC, SRAM vs FRAM, CPU copy vs DMA) sit in the
// datasheet-supported ranges, so the paper's ratios emerge from the same
// mechanics. EXPERIMENTS.md records paper-vs-measured for every figure.
#pragma once

namespace ehdnn::dev {

struct CostModel {
  // --- clock ---------------------------------------------------------
  double cpu_hz = 16.0e6;

  // --- active power per rail (watts) ----------------------------------
  double p_cpu_active = 5.7e-3;  // CPU executing
  double p_lea_active = 2.1e-3;  // LEA running (CPU may sleep: not added)
  double p_dma_active = 1.1e-3;  // DMA burst (CPU stalled/sleeping)

  // --- per-word access energy (joules/16-bit word) --------------------
  double e_sram_read = 1.1e-11;
  double e_sram_write = 1.3e-11;
  double e_fram_read = 2.2e-11;   // ~2x SRAM read
  double e_fram_write = 5.5e-11;  // ~4-5x SRAM write

  // --- CPU cycle costs -------------------------------------------------
  double cycles_cpu_op = 1.0;    // register ALU op
  double cycles_cpu_mac = 9.0;   // 16x16+32 MAC through the MPY32 peripheral
  double cycles_sram_word = 2.0; // CPU load/store, SRAM
  double cycles_fram_word = 3.0; // CPU load/store, FRAM (wait states @16MHz)

  // --- DMA -------------------------------------------------------------
  double cycles_dma_setup = 12.0;
  double cycles_dma_word = 2.0;

  // --- LEA kernel cycle models ------------------------------------------
  double lea_setup = 40.0;             // command word + interrupt epilogue
  double lea_mac_per_elem = 1.0;
  double lea_add_per_elem = 1.0;
  double lea_mpy_per_elem = 1.0;
  double lea_cmul_per_elem = 4.0;      // complex multiply = 4 real MACs
  double lea_shift_per_elem = 1.0;
  double lea_fft_per_butterfly = 4.0;  // radix-2 butterfly

  double seconds(double cycles) const { return cycles / cpu_hz; }
};

}  // namespace ehdnn::dev
