#include "device/device.h"

#include <vector>

#include "util/math.h"

namespace ehdnn::dev {

Device::Device(DeviceConfig cfg)
    : cfg_(cfg),
      sram_(MemKind::kSram, cfg.sram_words),
      fram_(MemKind::kFram, cfg.fram_words),
      scramble_rng_(cfg.scramble_seed) {}

void Device::spend(Rail rail, double cycles, double extra_energy_joules,
                   double active_power_watts) {
  const double dt = cfg_.cost.seconds(cycles);
  const double joules = active_power_watts * dt + extra_energy_joules;
  trace_.add(rail, joules, cycles);
  if (supply_ != nullptr && !supply_->consume(joules, dt)) {
    throw PowerFailure{};
  }
}

void Device::cpu_ops(double n_ops) {
  spend(Rail::kCpu, n_ops * cfg_.cost.cycles_cpu_op, 0.0, cfg_.cost.p_cpu_active);
}

void Device::cpu_mac_cycles() {
  spend(Rail::kCpu, cfg_.cost.cycles_cpu_mac, 0.0, cfg_.cost.p_cpu_active);
}

fx::q15_t Device::read(MemKind mem, Addr a) {
  if (mem == MemKind::kSram) {
    spend(Rail::kSramRead, cfg_.cost.cycles_sram_word, cfg_.cost.e_sram_read,
          cfg_.cost.p_cpu_active);
    return sram_.peek(a);
  }
  spend(Rail::kFramRead, cfg_.cost.cycles_fram_word, cfg_.cost.e_fram_read,
        cfg_.cost.p_cpu_active);
  return fram_.peek(a);
}

void Device::write(MemKind mem, Addr a, fx::q15_t v) {
  if (mem == MemKind::kSram) {
    spend(Rail::kSramWrite, cfg_.cost.cycles_sram_word, cfg_.cost.e_sram_write,
          cfg_.cost.p_cpu_active);
    sram_.poke(a, v);
    return;
  }
  spend(Rail::kFramWrite, cfg_.cost.cycles_fram_word, cfg_.cost.e_fram_write,
        cfg_.cost.p_cpu_active);
  fram_.poke(a, v);
}

void Device::dma_copy(MemKind src_mem, Addr src, MemKind dst_mem, Addr dst,
                      std::size_t words) {
  spend(Rail::kDma, cfg_.cost.cycles_dma_setup, 0.0, cfg_.cost.p_dma_active);
  MemoryRegion& s = region(src_mem);
  MemoryRegion& d = region(dst_mem);
  const CostModel& cm = cfg_.cost;
  for (std::size_t i = 0; i < words; ++i) {
    const double e_rd = src_mem == MemKind::kSram ? cm.e_sram_read : cm.e_fram_read;
    const double e_wr = dst_mem == MemKind::kSram ? cm.e_sram_write : cm.e_fram_write;
    // Word effect applied only after its energy is paid: a brown-out mid
    // transfer leaves a clean prefix.
    spend(Rail::kDma, cm.cycles_dma_word, e_rd + e_wr, cm.p_dma_active);
    d.poke(dst + i, s.peek(src + i));
  }
}

std::int64_t Device::lea_mac(Addr a, Addr b, std::size_t n, bool* overflow) {
  const CostModel& cm = cfg_.cost;
  const double cycles = cm.lea_setup + cm.lea_mac_per_elem * static_cast<double>(n);
  const double e_mem = static_cast<double>(2 * n) * cm.e_sram_read;
  spend(Rail::kLea, cycles, e_mem, cm.p_lea_active);
  std::int64_t acc = 0;
  bool ovf = false;
  for (std::size_t i = 0; i < n; ++i) {
    acc += fx::mul_q30(sram_.peek(a + i), sram_.peek(b + i));
    if (acc > std::numeric_limits<fx::q31_t>::max() ||
        acc < std::numeric_limits<fx::q31_t>::min()) {
      ovf = true;
    }
  }
  if (overflow != nullptr) *overflow = ovf;
  return acc;
}

void Device::lea_add(Addr a, Addr b, Addr out, std::size_t n, fx::SatStats* stats) {
  const CostModel& cm = cfg_.cost;
  spend(Rail::kLea, cm.lea_setup + cm.lea_add_per_elem * static_cast<double>(n),
        static_cast<double>(2 * n) * cm.e_sram_read + static_cast<double>(n) * cm.e_sram_write,
        cm.p_lea_active);
  for (std::size_t i = 0; i < n; ++i) {
    sram_.poke(out + i, fx::add_sat(sram_.peek(a + i), sram_.peek(b + i), stats));
  }
}

void Device::lea_mpy(Addr a, Addr b, Addr out, std::size_t n, fx::SatStats* stats) {
  const CostModel& cm = cfg_.cost;
  spend(Rail::kLea, cm.lea_setup + cm.lea_mpy_per_elem * static_cast<double>(n),
        static_cast<double>(2 * n) * cm.e_sram_read + static_cast<double>(n) * cm.e_sram_write,
        cm.p_lea_active);
  for (std::size_t i = 0; i < n; ++i) {
    sram_.poke(out + i, fx::mul_q15(sram_.peek(a + i), sram_.peek(b + i), stats));
  }
}

void Device::lea_shift(Addr a, Addr out, std::size_t n, int left_shift, fx::SatStats* stats) {
  const CostModel& cm = cfg_.cost;
  spend(Rail::kLea, cm.lea_setup + cm.lea_shift_per_elem * static_cast<double>(n),
        static_cast<double>(n) * (cm.e_sram_read + cm.e_sram_write), cm.p_lea_active);
  for (std::size_t i = 0; i < n; ++i) {
    sram_.poke(out + i, fx::shift_sat(sram_.peek(a + i), left_shift, stats));
  }
}

void Device::lea_cmul(Addr a, Addr b, Addr out, std::size_t n, fx::SatStats* stats) {
  const CostModel& cm = cfg_.cost;
  spend(Rail::kLea, cm.lea_setup + cm.lea_cmul_per_elem * static_cast<double>(n),
        static_cast<double>(4 * n) * cm.e_sram_read +
            static_cast<double>(2 * n) * cm.e_sram_write,
        cm.p_lea_active);
  for (std::size_t i = 0; i < n; ++i) {
    const fx::cq15 av{sram_.peek(a + 2 * i), sram_.peek(a + 2 * i + 1)};
    const fx::cq15 bv{sram_.peek(b + 2 * i), sram_.peek(b + 2 * i + 1)};
    const fx::cq15 r = fx::cmul(av, bv, stats);
    sram_.poke(out + 2 * i, r.re);
    sram_.poke(out + 2 * i + 1, r.im);
  }
}

namespace {

double fft_cycles(const CostModel& cm, std::size_t n) {
  const double butterflies = static_cast<double>(n) / 2.0 * static_cast<double>(ilog2(n));
  return cm.lea_setup + cm.lea_fft_per_butterfly * butterflies;
}

}  // namespace

int Device::lea_fft(Addr a, std::size_t n, dsp::FftScaling scaling, fx::SatStats* stats) {
  const CostModel& cm = cfg_.cost;
  // The LEA streams the working set through its local SRAM bank; model
  // one read + one write per word per pass over log2(n) stages.
  const double passes = static_cast<double>(ilog2(n));
  spend(Rail::kLea, fft_cycles(cm, n),
        static_cast<double>(2 * n) * passes * (cm.e_sram_read + cm.e_sram_write),
        cm.p_lea_active);
  std::vector<fx::cq15> buf(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = {sram_.peek(a + 2 * i), sram_.peek(a + 2 * i + 1)};
  }
  const int exp = dsp::fft_q15(buf, scaling, stats);
  for (std::size_t i = 0; i < n; ++i) {
    sram_.poke(a + 2 * i, buf[i].re);
    sram_.poke(a + 2 * i + 1, buf[i].im);
  }
  return exp;
}

int Device::lea_ifft(Addr a, std::size_t n, dsp::FftScaling scaling, fx::SatStats* stats) {
  const CostModel& cm = cfg_.cost;
  const double passes = static_cast<double>(ilog2(n));
  spend(Rail::kLea, fft_cycles(cm, n),
        static_cast<double>(2 * n) * passes * (cm.e_sram_read + cm.e_sram_write),
        cm.p_lea_active);
  std::vector<fx::cq15> buf(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = {sram_.peek(a + 2 * i), sram_.peek(a + 2 * i + 1)};
  }
  const int exp = dsp::ifft_q15(buf, scaling, stats);
  for (std::size_t i = 0; i < n; ++i) {
    sram_.poke(a + 2 * i, buf[i].re);
    sram_.poke(a + 2 * i + 1, buf[i].im);
  }
  return exp;
}

void Device::reboot() {
  ++reboots_;
  sram_.scramble(scramble_rng_);
  // Boot sequence: clock/FRAM controller init, reset vector dispatch.
  // Charged to the CPU rail once back on.
  spend(Rail::kCpu, 400.0, 0.0, cfg_.cost.p_cpu_active);
}

double Device::sample_voltage() {
  // Comparator poll: trivial but not free.
  spend(Rail::kCpu, 6.0, 0.0, cfg_.cost.p_cpu_active);
  return supply_ != nullptr ? supply_->voltage() : 3.3;
}

}  // namespace ehdnn::dev
