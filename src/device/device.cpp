#include "device/device.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "util/math.h"

namespace ehdnn::dev {

Device::Device(DeviceConfig cfg, DeviceSlabs* slabs)
    : cfg_(cfg),
      c_sram_rd_(fixed_cost(cfg.cost.cycles_sram_word, cfg.cost.e_sram_read,
                            cfg.cost.p_cpu_active)),
      c_sram_wr_(fixed_cost(cfg.cost.cycles_sram_word, cfg.cost.e_sram_write,
                            cfg.cost.p_cpu_active)),
      c_fram_rd_(fixed_cost(cfg.cost.cycles_fram_word, cfg.cost.e_fram_read,
                            cfg.cost.p_cpu_active)),
      c_fram_wr_(fixed_cost(cfg.cost.cycles_fram_word, cfg.cost.e_fram_write,
                            cfg.cost.p_cpu_active)),
      c_cpu_mac_(fixed_cost(cfg.cost.cycles_cpu_mac, 0.0, cfg.cost.p_cpu_active)),
      sram_(slabs != nullptr
                ? MemoryRegion(MemKind::kSram, cfg.sram_words, std::move(slabs->sram))
                : MemoryRegion(MemKind::kSram, cfg.sram_words)),
      fram_(slabs != nullptr
                ? MemoryRegion(MemKind::kFram, cfg.fram_words, std::move(slabs->fram))
                : MemoryRegion(MemKind::kFram, cfg.fram_words)),
      scramble_rng_(cfg.scramble_seed) {}

// The inline fast path in device.h already buffered the draw when the
// open window could take it; this tail sees only window-refused draws:
// settle, then either arm a fresh window or fall back to per-op consume.
void Device::spend_slow(double joules, double dt) {
  if (prepaid_open_) {
    settle_supply();
  }
  if (prepay_supported_) {
    const double budget = supply_->prepaid_budget();
    if (joules <= budget) {
      prepaid_open_ = true;
      prepaid_budget_ = budget - joules;
      prepaid_.push_back({joules, dt});
      return;
    }
  }
  // Near brown-out (or against a supply that opted out): per-op
  // settlement, so the failure lands on exactly the op it would have.
  if (!supply_->consume(joules, dt)) {
    throw PowerFailure{};
  }
}

void Device::settle_supply() {
  if (!prepaid_open_) return;
  prepaid_open_ = false;
  prepaid_budget_ = 0.0;
  const std::size_t n = prepaid_.size();
  const std::size_t done = supply_->consume_batch(prepaid_.data(), n);
  prepaid_.clear();
  if (done != n) {
    // The budget guarantee (prepaid_budget's slack) makes this
    // unreachable; a brown-out here would mean ops whose architectural
    // effects already landed were never paid for.
    fail("prepaid settlement browned out: budget invariant violated");
  }
}

void Device::cpu_ops(double n_ops) {
  const CostModel& cm = cfg_.cost;
  // Kernels batch whole blocks of ALU work into one call; near brown-out,
  // fall back to op-granular spends so a dying burst's trace and supply
  // drain stop where per-op accounting would have stopped them.
  if (n_ops > 1.0 && !can_bulk_spend(spend_joules(n_ops * cm.cycles_cpu_op, 0.0,
                                                  cm.p_cpu_active))) {
    double remaining = n_ops;
    while (remaining > 0.0) {
      const double step = std::min(1.0, remaining);
      spend(Rail::kCpu, step * cm.cycles_cpu_op, 0.0, cm.p_cpu_active);
      remaining -= step;
    }
    return;
  }
  spend(Rail::kCpu, n_ops * cm.cycles_cpu_op, 0.0, cm.p_cpu_active);
}

void Device::cpu_mac_cycles() { spend_fixed(Rail::kCpu, c_cpu_mac_); }

fx::q15_t Device::read(MemKind mem, Addr a) {
  if (mem == MemKind::kSram) {
    spend_fixed(Rail::kSramRead, c_sram_rd_);
    return sram_.peek(a);
  }
  spend_fixed(Rail::kFramRead, c_fram_rd_);
  return fram_.peek(a);
}

void Device::write(MemKind mem, Addr a, fx::q15_t v) {
  if (mem == MemKind::kSram) {
    spend_fixed(Rail::kSramWrite, c_sram_wr_);
    sram_.poke(a, v);
    return;
  }
  spend_fixed(Rail::kFramWrite, c_fram_wr_);
  fram_.poke(a, v);
}

bool Device::can_bulk_spend(double joules) {
  if (supply_ == nullptr) return true;
  // Within the open window's remaining budget the draw provably succeeds
  // (true headroom only exceeds the budget: income adds, every buffered
  // draw was already debited), so no settlement is needed to decide.
  if (prepaid_open_) {
    if (joules <= prepaid_budget_) return true;
    settle_supply();  // decision needs the true, settled headroom
  }
  return joules <= supply_->headroom();
}

namespace {

// Same-region overlapping copies must replay the scalar forward loop:
// its word-by-word self-propagation (read of an already-written word) is
// the architectural behavior, and memmove would diverge from it.
bool ranges_overlap(Addr a, Addr b, std::size_t n) {
  return a < b + n && b < a + n;
}

}  // namespace

void Device::read_block(MemKind mem, Addr a, std::span<fx::q15_t> out) {
  const std::size_t n = out.size();
  if (n == 0) return;
  const CostModel& cm = cfg_.cost;
  const auto dn = static_cast<double>(n);
  const double cycles =
      dn * (mem == MemKind::kSram ? cm.cycles_sram_word : cm.cycles_fram_word);
  const double extra = dn * (mem == MemKind::kSram ? cm.e_sram_read : cm.e_fram_read);
  // Near brown-out, replay the scalar sequence so the dying burst's trace
  // and supply drain stop at exactly the word the scalar path reaches.
  if (!bulk_enabled_ || !can_bulk_spend(spend_joules(cycles, extra, cm.p_cpu_active))) {
    for (std::size_t i = 0; i < n; ++i) out[i] = read(mem, a + i);
    return;
  }
  const auto src = region(mem).view(a, n);
  spend(mem == MemKind::kSram ? Rail::kSramRead : Rail::kFramRead, cycles, extra,
        cm.p_cpu_active);
  std::memcpy(out.data(), src.data(), n * sizeof(fx::q15_t));
}

void Device::write_block(MemKind mem, Addr a, std::span<const fx::q15_t> v) {
  const std::size_t n = v.size();
  if (n == 0) return;
  const CostModel& cm = cfg_.cost;
  const auto dn = static_cast<double>(n);
  const double cycles =
      dn * (mem == MemKind::kSram ? cm.cycles_sram_word : cm.cycles_fram_word);
  const double extra =
      dn * (mem == MemKind::kSram ? cm.e_sram_write : cm.e_fram_write);
  // Near brown-out, replay the scalar sequence: a failure then leaves the
  // same word-granular clean prefix (the FRAM intermittency contract) and
  // the same prefix-only trace/supply accounting.
  const bool word_granular =
      !bulk_enabled_ || !can_bulk_spend(spend_joules(cycles, extra, cm.p_cpu_active));
  if (word_granular) {
    for (std::size_t i = 0; i < n; ++i) write(mem, a + i, v[i]);
    return;
  }
  auto dst = region(mem).mut_view(a, n);
  spend(mem == MemKind::kSram ? Rail::kSramWrite : Rail::kFramWrite, cycles, extra,
        cm.p_cpu_active);
  std::memcpy(dst.data(), v.data(), n * sizeof(fx::q15_t));
}

void Device::read_gather(MemKind mem, Addr base, std::span<const std::uint32_t> offsets,
                         std::size_t span_words, std::span<fx::q15_t> out,
                         bool offsets_in_span) {
  const std::size_t n = offsets.size();
  check(out.size() == n, "read_gather: offsets/out size mismatch");
  if (n == 0) return;
  const CostModel& cm = cfg_.cost;
  const auto dn = static_cast<double>(n);
  const double cycles =
      dn * (mem == MemKind::kSram ? cm.cycles_sram_word : cm.cycles_fram_word);
  const double extra = dn * (mem == MemKind::kSram ? cm.e_sram_read : cm.e_fram_read);
  if (!bulk_enabled_ || !can_bulk_spend(spend_joules(cycles, extra, cm.p_cpu_active))) {
    for (std::size_t i = 0; i < n; ++i) out[i] = read(mem, base + offsets[i]);
    return;
  }
  const auto src = region(mem).view(base, span_words);
  spend(mem == MemKind::kSram ? Rail::kSramRead : Rail::kFramRead, cycles, extra,
        cm.p_cpu_active);
  if (offsets_in_span) {
    // The caller's gather table carries span = max offset + 1 as a
    // construction invariant; the window view above already range-checked
    // [base, base + span), so the per-element guard is pure overhead.
    for (std::size_t i = 0; i < n; ++i) {
      assert(offsets[i] < span_words);
      out[i] = src[offsets[i]];
    }
    return;
  }
  // Bare compare + [[noreturn]] fail keeps the guard out of the hot
  // path's way (check()'s source_location capture is measurably costly
  // per element at this call rate).
  for (std::size_t i = 0; i < n; ++i) {
    if (offsets[i] >= span_words) fail("read_gather: offset outside declared span");
    out[i] = src[offsets[i]];
  }
}

void Device::cpu_copy(MemKind src_mem, Addr src, MemKind dst_mem, Addr dst,
                      std::size_t words) {
  const CostModel& cm = cfg_.cost;
  if (words == 0) return;
  const auto dn = static_cast<double>(words);
  const double rd_cycles =
      dn * (src_mem == MemKind::kSram ? cm.cycles_sram_word : cm.cycles_fram_word);
  const double rd_extra = dn * (src_mem == MemKind::kSram ? cm.e_sram_read : cm.e_fram_read);
  const double wr_cycles =
      dn * (dst_mem == MemKind::kSram ? cm.cycles_sram_word : cm.cycles_fram_word);
  const double wr_extra = dn * (dst_mem == MemKind::kSram ? cm.e_sram_write : cm.e_fram_write);
  const double total_joules =
      spend_joules(2.0 * dn * cm.cycles_cpu_op + rd_cycles + wr_cycles, rd_extra + wr_extra,
                   cm.p_cpu_active);
  const bool word_granular =
      !bulk_enabled_ || (src_mem == dst_mem && ranges_overlap(src, dst, words)) ||
      !can_bulk_spend(total_joules);
  if (word_granular) {
    for (std::size_t i = 0; i < words; ++i) {
      cpu_ops(2);  // address update + loop check
      write(dst_mem, dst + i, read(src_mem, src + i));
    }
    return;
  }
  const auto s = region(src_mem).view(src, words);
  auto d = region(dst_mem).mut_view(dst, words);
  cpu_ops(2.0 * dn);
  spend(src_mem == MemKind::kSram ? Rail::kSramRead : Rail::kFramRead, rd_cycles, rd_extra,
        cm.p_cpu_active);
  spend(dst_mem == MemKind::kSram ? Rail::kSramWrite : Rail::kFramWrite, wr_cycles, wr_extra,
        cm.p_cpu_active);
  std::memcpy(d.data(), s.data(), words * sizeof(fx::q15_t));
}

void Device::dma_copy(MemKind src_mem, Addr src, MemKind dst_mem, Addr dst,
                      std::size_t words) {
  spend(Rail::kDma, cfg_.cost.cycles_dma_setup, 0.0, cfg_.cost.p_dma_active);
  MemoryRegion& s = region(src_mem);
  MemoryRegion& d = region(dst_mem);
  const CostModel& cm = cfg_.cost;
  const double e_rd = src_mem == MemKind::kSram ? cm.e_sram_read : cm.e_fram_read;
  const double e_wr = dst_mem == MemKind::kSram ? cm.e_sram_write : cm.e_fram_write;
  if (bulk_enabled_ && words > 0 &&
      !(src_mem == dst_mem && ranges_overlap(src, dst, words))) {
    const auto dn = static_cast<double>(words);
    const double cycles = dn * cm.cycles_dma_word;
    const double extra = dn * (e_rd + e_wr);
    // Same near-brown-out rule as write_block: word-granular replay keeps
    // both the torn-FRAM prefix and the dying burst's accounting exact.
    if (can_bulk_spend(spend_joules(cycles, extra, cm.p_dma_active))) {
      const auto sv = s.view(src, words);
      auto dv = d.mut_view(dst, words);
      spend(Rail::kDma, cycles, extra, cm.p_dma_active);
      std::memcpy(dv.data(), sv.data(), words * sizeof(fx::q15_t));
      return;
    }
  }
  for (std::size_t i = 0; i < words; ++i) {
    // Word effect applied only after its energy is paid: a brown-out mid
    // transfer leaves a clean prefix.
    spend(Rail::kDma, cm.cycles_dma_word, e_rd + e_wr, cm.p_dma_active);
    d.poke(dst + i, s.peek(src + i));
  }
}

std::int64_t Device::lea_mac(Addr a, Addr b, std::size_t n, bool* overflow) {
  return mac_block(a, b, n, overflow);
}

std::int64_t Device::mac_block(Addr a, Addr b, std::size_t n, bool* overflow) {
  const CostModel& cm = cfg_.cost;
  const double cycles = cm.lea_setup + cm.lea_mac_per_elem * static_cast<double>(n);
  const double e_mem = static_cast<double>(2 * n) * cm.e_sram_read;
  spend(Rail::kLea, cycles, e_mem, cm.p_lea_active);
  std::int64_t acc = 0;
  bool ovf = false;
  if (bulk_enabled_) {
    const auto va = sram_.view(a, n);
    const auto vb = sram_.view(b, n);
    for (std::size_t i = 0; i < n; ++i) {
      acc += fx::mul_q30(va[i], vb[i]);
      // Checked per element: a transient excursion past the 32-bit
      // accumulator must set the flag even if later products cancel it.
      if (acc > std::numeric_limits<fx::q31_t>::max() ||
          acc < std::numeric_limits<fx::q31_t>::min()) {
        ovf = true;
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      acc += fx::mul_q30(sram_.peek(a + i), sram_.peek(b + i));
      if (acc > std::numeric_limits<fx::q31_t>::max() ||
          acc < std::numeric_limits<fx::q31_t>::min()) {
        ovf = true;
      }
    }
  }
  if (overflow != nullptr) *overflow = ovf;
  return acc;
}

// The LEA ops charge one aggregated spend in BOTH modes (as the seed
// implementation did), so the scalar arms below differ only in per-word
// bounds-checked peek/poke — kept deliberately: set_bulk_enabled(false)
// is the wall-clock reference the perf harness measures against, and it
// must preserve the original per-word access pattern.
void Device::lea_add(Addr a, Addr b, Addr out, std::size_t n, fx::SatStats* stats) {
  const CostModel& cm = cfg_.cost;
  spend(Rail::kLea, cm.lea_setup + cm.lea_add_per_elem * static_cast<double>(n),
        static_cast<double>(2 * n) * cm.e_sram_read + static_cast<double>(n) * cm.e_sram_write,
        cm.p_lea_active);
  if (bulk_enabled_) {
    const auto va = sram_.view(a, n);
    const auto vb = sram_.view(b, n);
    auto vo = sram_.mut_view(out, n);
    for (std::size_t i = 0; i < n; ++i) vo[i] = fx::add_sat(va[i], vb[i], stats);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    sram_.poke(out + i, fx::add_sat(sram_.peek(a + i), sram_.peek(b + i), stats));
  }
}

void Device::lea_mpy(Addr a, Addr b, Addr out, std::size_t n, fx::SatStats* stats) {
  const CostModel& cm = cfg_.cost;
  spend(Rail::kLea, cm.lea_setup + cm.lea_mpy_per_elem * static_cast<double>(n),
        static_cast<double>(2 * n) * cm.e_sram_read + static_cast<double>(n) * cm.e_sram_write,
        cm.p_lea_active);
  if (bulk_enabled_) {
    const auto va = sram_.view(a, n);
    const auto vb = sram_.view(b, n);
    auto vo = sram_.mut_view(out, n);
    for (std::size_t i = 0; i < n; ++i) vo[i] = fx::mul_q15(va[i], vb[i], stats);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    sram_.poke(out + i, fx::mul_q15(sram_.peek(a + i), sram_.peek(b + i), stats));
  }
}

void Device::lea_shift(Addr a, Addr out, std::size_t n, int left_shift, fx::SatStats* stats) {
  const CostModel& cm = cfg_.cost;
  spend(Rail::kLea, cm.lea_setup + cm.lea_shift_per_elem * static_cast<double>(n),
        static_cast<double>(n) * (cm.e_sram_read + cm.e_sram_write), cm.p_lea_active);
  if (bulk_enabled_) {
    const auto va = sram_.view(a, n);
    auto vo = sram_.mut_view(out, n);
    for (std::size_t i = 0; i < n; ++i) vo[i] = fx::shift_sat(va[i], left_shift, stats);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    sram_.poke(out + i, fx::shift_sat(sram_.peek(a + i), left_shift, stats));
  }
}

void Device::lea_cmul(Addr a, Addr b, Addr out, std::size_t n, fx::SatStats* stats) {
  const CostModel& cm = cfg_.cost;
  spend(Rail::kLea, cm.lea_setup + cm.lea_cmul_per_elem * static_cast<double>(n),
        static_cast<double>(4 * n) * cm.e_sram_read +
            static_cast<double>(2 * n) * cm.e_sram_write,
        cm.p_lea_active);
  if (bulk_enabled_) {
    const auto va = sram_.view(a, 2 * n);
    const auto vb = sram_.view(b, 2 * n);
    auto vo = sram_.mut_view(out, 2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      const fx::cq15 r = fx::cmul({va[2 * i], va[2 * i + 1]}, {vb[2 * i], vb[2 * i + 1]}, stats);
      vo[2 * i] = r.re;
      vo[2 * i + 1] = r.im;
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const fx::cq15 av{sram_.peek(a + 2 * i), sram_.peek(a + 2 * i + 1)};
    const fx::cq15 bv{sram_.peek(b + 2 * i), sram_.peek(b + 2 * i + 1)};
    const fx::cq15 r = fx::cmul(av, bv, stats);
    sram_.poke(out + 2 * i, r.re);
    sram_.poke(out + 2 * i + 1, r.im);
  }
}

namespace {

double fft_cycles(const CostModel& cm, std::size_t n) {
  const double butterflies = static_cast<double>(n) / 2.0 * static_cast<double>(ilog2(n));
  return cm.lea_setup + cm.lea_fft_per_butterfly * butterflies;
}

}  // namespace

int Device::lea_fft(Addr a, std::size_t n, dsp::FftScaling scaling, fx::SatStats* stats) {
  const CostModel& cm = cfg_.cost;
  // The LEA streams the working set through its local SRAM bank; model
  // one read + one write per word per pass over log2(n) stages.
  const double passes = static_cast<double>(ilog2(n));
  spend(Rail::kLea, fft_cycles(cm, n),
        static_cast<double>(2 * n) * passes * (cm.e_sram_read + cm.e_sram_write),
        cm.p_lea_active);
  if (bulk_enabled_) {
    if (fft_scratch_.size() < n) fft_scratch_.resize(n);
    const std::span<fx::cq15> buf(fft_scratch_.data(), n);
    const auto words = sram_.mut_view(a, 2 * n);
    std::memcpy(static_cast<void*>(buf.data()), words.data(), 2 * n * sizeof(fx::q15_t));
    const int exp = dsp::fft_q15(buf, scaling, stats);
    std::memcpy(words.data(), static_cast<const void*>(buf.data()), 2 * n * sizeof(fx::q15_t));
    return exp;
  }
  std::vector<fx::cq15> buf(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = {sram_.peek(a + 2 * i), sram_.peek(a + 2 * i + 1)};
  }
  const int exp = dsp::fft_q15(buf, scaling, stats);
  for (std::size_t i = 0; i < n; ++i) {
    sram_.poke(a + 2 * i, buf[i].re);
    sram_.poke(a + 2 * i + 1, buf[i].im);
  }
  return exp;
}

int Device::lea_ifft(Addr a, std::size_t n, dsp::FftScaling scaling, fx::SatStats* stats) {
  const CostModel& cm = cfg_.cost;
  const double passes = static_cast<double>(ilog2(n));
  spend(Rail::kLea, fft_cycles(cm, n),
        static_cast<double>(2 * n) * passes * (cm.e_sram_read + cm.e_sram_write),
        cm.p_lea_active);
  if (bulk_enabled_) {
    if (fft_scratch_.size() < n) fft_scratch_.resize(n);
    const std::span<fx::cq15> buf(fft_scratch_.data(), n);
    const auto words = sram_.mut_view(a, 2 * n);
    std::memcpy(static_cast<void*>(buf.data()), words.data(), 2 * n * sizeof(fx::q15_t));
    const int exp = dsp::ifft_q15(buf, scaling, stats);
    std::memcpy(words.data(), static_cast<const void*>(buf.data()), 2 * n * sizeof(fx::q15_t));
    return exp;
  }
  std::vector<fx::cq15> buf(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = {sram_.peek(a + 2 * i), sram_.peek(a + 2 * i + 1)};
  }
  const int exp = dsp::ifft_q15(buf, scaling, stats);
  for (std::size_t i = 0; i < n; ++i) {
    sram_.poke(a + 2 * i, buf[i].re);
    sram_.poke(a + 2 * i + 1, buf[i].im);
  }
  return exp;
}

void Device::reboot() {
  ++reboots_;
  sram_.scramble(scramble_rng_);
  // Boot sequence: clock/FRAM controller init, reset vector dispatch.
  // Charged to the CPU rail once back on.
  spend(Rail::kCpu, 400.0, 0.0, cfg_.cost.p_cpu_active);
  if (supply_ != nullptr) supply_->notify(SupplyEvent::kReboot);
}

double Device::sample_voltage() {
  // Comparator poll: trivial but not free.
  spend(Rail::kCpu, 6.0, 0.0, cfg_.cost.p_cpu_active);
  settle_supply();  // the comparator must read the settled store
  return supply_ != nullptr ? supply_->voltage() : 3.3;
}

}  // namespace ehdnn::dev
