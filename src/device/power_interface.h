// The power-supply interface the device draws from, and the power-failure
// signal that drives intermittent execution.
//
// Implementations live in src/power (capacitor + harvest source,
// continuous bench supply). The device calls consume() for every costed
// operation; a false return means the storage capacitor fell below the
// brown-out threshold mid-operation, and the device throws PowerFailure,
// which the intermittent runtimes in src/core/flex catch to simulate an
// off period + reboot.
#pragma once

#include <exception>

namespace ehdnn::dev {

class PowerFailure : public std::exception {
 public:
  const char* what() const noexcept override { return "power failure (brown-out)"; }
};

class PowerSupply {
 public:
  virtual ~PowerSupply() = default;

  // Draw `joules` over `dt` seconds (harvest income accrues over the same
  // window). Returns false on brown-out; the energy is drained regardless
  // (the capacitor empties into the dying device).
  virtual bool consume(double joules, double dt) = 0;

  // Current storage voltage — what FLEX's voltage monitor samples.
  virtual double voltage() const = 0;

  virtual bool on() const = 0;

  // Advance time with the device off until the turn-on threshold is
  // reached again; returns the off-time in seconds.
  virtual double recharge_to_on() = 0;

  // Elapsed supply-side time (on + off), seconds.
  virtual double now() const = 0;
};

}  // namespace ehdnn::dev
