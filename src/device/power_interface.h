// The power-supply interface the device draws from, and the power-failure
// signal that drives intermittent execution.
//
// Implementations live in src/power (capacitor + harvest source,
// continuous bench supply). The device calls consume() for every costed
// operation; a false return means the storage capacitor fell below the
// brown-out threshold mid-operation, and the device throws PowerFailure,
// which the intermittent runtimes in src/core/flex catch to simulate an
// off period + reboot.
#pragma once

#include <cstddef>
#include <exception>
#include <limits>

namespace ehdnn::dev {

// One recorded costed operation, buffered by the device's prepaid-headroom
// window and settled with the supply in order at the next settlement point.
struct SpendEvent {
  double joules = 0.0;
  double dt = 0.0;
};

class PowerFailure : public std::exception {
 public:
  const char* what() const noexcept override { return "power failure (brown-out)"; }
};

// Execution landmarks the intermittent runtimes announce to the supply.
// Physical supplies ignore them; schedule-driven supplies (the
// crash-consistency fuzzer's FailureScheduleSupply) use them to aim
// brown-outs at adversarial instants: tearing a progress-commit or
// checkpoint write, or failing exactly on a commit boundary.
enum class SupplyEvent {
  kCommitBegin,      // FRAM progress-commit writes start (SONIC/TAILS)
  kCommitEnd,        // progress-commit writes landed
  kCheckpointBegin,  // FLEX checkpoint write starts (payload first)
  kCheckpointEnd,    // checkpoint sequence word landed
  kReboot,           // device rebooted after a failure
};

class PowerSupply {
 public:
  virtual ~PowerSupply() = default;

  // Draw `joules` over `dt` seconds (harvest income accrues over the same
  // window). Returns false on brown-out; the energy is drained regardless
  // (the capacitor empties into the dying device).
  virtual bool consume(double joules, double dt) = 0;

  // Settle a batch of recorded draws, equivalent to calling consume() once
  // per event in order. Returns the index of the first event that browned
  // out, or `n` when every draw succeeded. Overrides may cache
  // source-segment state across the batch but must preserve per-event
  // arithmetic and failure instants exactly — the prepaid window's
  // contract is that buffering then settling is indistinguishable from
  // immediate per-op settlement.
  virtual std::size_t consume_batch(const SpendEvent* ev, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!consume(ev[i].joules, ev[i].dt)) return i;
    }
    return n;
  }

  // True when the device may run a prepaid-headroom window against this
  // supply: draws within a budget established from headroom() provably
  // cannot brown out, so they may be buffered and settled later.
  // Schedule-driven supplies (the fuzzer's FailureScheduleSupply) count
  // individual consume() calls to aim failures and must stay opted out.
  virtual bool prepay_safe() const { return false; }

  // The energy budget a prepaid window may be armed with right now: a
  // headroom() shaved by the supply's own rounding slack, so that a batch
  // of draws summing within the budget provably settles without a
  // brown-out even after per-event floating-point rounding. Zero (the
  // default, and always near the brown-out threshold) means per-op
  // settlement — which is what keeps failure instants bit-exact.
  virtual double prepaid_budget() const { return 0.0; }

  // Current storage voltage — what FLEX's voltage monitor samples.
  virtual double voltage() const = 0;

  // Conservative lower bound on the energy (joules) that can be drawn
  // before brown-out, ignoring harvest income. The device's bulk-access
  // fast paths use this to decide whether a whole block can be charged in
  // one aggregated event: if the block's energy fits the headroom, the
  // draw provably succeeds (income only adds). Near brown-out the device
  // falls back to word-granular accounting so blocks tear — and charge
  // the supply — exactly like the scalar path. Note the aggregated draw samples
  // harvest income once over the block window instead of per word, so
  // under a time-varying source the stored-energy trajectory — and hence
  // *later* failure timing — may differ slightly from the scalar path;
  // device-side cost totals and (by the runtimes' checkpoint contract)
  // inference outputs are unaffected. Supplies that never fail report
  // infinity.
  virtual double headroom() const { return std::numeric_limits<double>::infinity(); }

  virtual bool on() const = 0;

  // Advance time with the device off until the turn-on threshold is
  // reached again; returns the off-time in seconds. A supply whose
  // harvester has starved (no boot within its off-time guard) returns the
  // time it waited with on() still false and starved() true — the caller
  // decides whether to give up (RunStats::Outcome::kStarved) or wait more.
  virtual double recharge_to_on() = 0;

  // True when the last recharge_to_on() gave up before reaching the boot
  // threshold.
  virtual bool starved() const { return false; }

  // Runtime-to-supply event channel (no-op for physical supplies).
  virtual void notify(SupplyEvent /*event*/) {}

  // Duty-cycle sleep: advance supply time to `t_s` (absolute seconds, as
  // reported by now()) with the device idle — no load, harvest income
  // still accrues. The scheduling layer (sched::JobQueue) parks a device
  // here between a job's completion and the next job's release. No-op
  // when t_s is in the past.
  virtual void idle_until(double /*t_s*/) {}

  // Elapsed supply-side time (on + off + idle), seconds.
  virtual double now() const = 0;
};

}  // namespace ehdnn::dev
