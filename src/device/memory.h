// Byte-for-byte memory regions with volatility semantics.
//
// The MSP430FR5994 pairs 8 KB of volatile SRAM (fast, cheap accesses,
// contents lost at brown-out) with 256 KB of non-volatile FRAM (slower,
// pricier writes, survives power loss). Getting the *loss* right is the
// whole game for intermittent computing, so regions store real words: a
// reboot scrambles SRAM (deterministically, from a seed, so tests can
// prove that a runtime never silently relies on dead state) and leaves
// FRAM intact.
//
// Word addressing: all ehdnn device data is 16-bit, so addresses index
// q15 words. Cost accounting happens in Device, not here; peek/poke are
// the cost-free accessors used for programming-time setup and test
// assertions only.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "fixed/q15.h"
#include "util/check.h"
#include "util/rng.h"

namespace ehdnn::dev {

using Addr = std::size_t;  // word address within a region

enum class MemKind { kSram, kFram };

class MemoryRegion {
 public:
  MemoryRegion(MemKind kind, std::size_t words)
      : kind_(kind), words_(words, 0) {}

  // Arena construction: adopt `storage` as the backing buffer (its
  // capacity is reused; contents are reset to the `words` zeros a fresh
  // region holds). The fleet engine's slab arena hands retired devices'
  // buffers to newly admitted ones this way, so a bounded resident
  // window allocates its big word arrays once instead of per device.
  MemoryRegion(MemKind kind, std::size_t words, std::vector<fx::q15_t> storage)
      : kind_(kind), words_(std::move(storage)) {
    words_.assign(words, 0);
  }

  // Arena hand-off: steal the backing storage for recycling. The region
  // is left empty and must not be used afterwards (its owner is being
  // torn down).
  std::vector<fx::q15_t> take_storage() {
    brk_ = 0;
    segments_.clear();
    return std::move(words_);
  }

  MemKind kind() const { return kind_; }
  bool is_volatile() const { return kind_ == MemKind::kSram; }
  std::size_t size_words() const { return words_.size(); }
  std::size_t size_bytes() const { return words_.size() * sizeof(fx::q15_t); }

  fx::q15_t peek(Addr a) const {
    check(a < words_.size(), "MemoryRegion: address out of range");
    return words_[a];
  }
  void poke(Addr a, fx::q15_t v) {
    check(a < words_.size(), "MemoryRegion: address out of range");
    words_[a] = v;
  }

  // Bounds-checked block views: one range check for a whole [a, a+n)
  // window, then raw storage access. These back the device's bulk
  // fast paths; like peek/poke they carry no cost accounting.
  std::span<const fx::q15_t> view(Addr a, std::size_t n) const {
    check(a <= words_.size() && n <= words_.size() - a,
          "MemoryRegion: block out of range");
    return {words_.data() + a, n};
  }
  std::span<fx::q15_t> mut_view(Addr a, std::size_t n) {
    check(a <= words_.size() && n <= words_.size() - a,
          "MemoryRegion: block out of range");
    return {words_.data() + a, n};
  }

  // Volatile loss at reboot: scramble contents deterministically. A
  // runtime that reads un-reinitialized SRAM after reboot will compute
  // garbage and fail the bit-exactness tests — by design.
  void scramble(Rng& rng) {
    for (auto& w : words_) w = static_cast<fx::q15_t>(rng.next_u64());
  }

  // Image cloning: replace this region's contents AND allocator state
  // with a copy of `other`'s. Cost-free like peek/poke — this is a
  // programming-time operation (the fleet engine stamps each device's
  // FRAM from its group's compiled template instead of re-running
  // ace::compile per device; the poke sequence compile would perform is
  // cost-free too, so the clone is observationally identical).
  void clone_from(const MemoryRegion& other) {
    check(kind_ == other.kind_ && words_.size() == other.words_.size(),
          "MemoryRegion: clone_from geometry mismatch");
    words_ = other.words_;  // copy-assign reuses existing capacity
    brk_ = other.brk_;
    segments_ = other.segments_;
  }

  // --- bump allocator (named segments, word granular) -------------------
  struct Segment {
    std::string name;
    Addr base = 0;
    std::size_t words = 0;
  };

  Addr alloc(std::size_t words, const std::string& name) {
    check(brk_ + words <= words_.size(),
          "MemoryRegion: out of memory allocating '" + name + "' (" +
              std::to_string(words) + " words, brk=" + std::to_string(brk_) + "/" +
              std::to_string(words_.size()) + ")");
    segments_.push_back({name, brk_, words});
    const Addr base = brk_;
    brk_ += words;
    return base;
  }

  std::size_t allocated_words() const { return brk_; }
  std::size_t free_words() const { return words_.size() - brk_; }
  const std::vector<Segment>& segments() const { return segments_; }

  void reset_allocator() {
    brk_ = 0;
    segments_.clear();
  }

 private:
  MemKind kind_;
  std::vector<fx::q15_t> words_;
  Addr brk_ = 0;
  std::vector<Segment> segments_;
};

}  // namespace ehdnn::dev
