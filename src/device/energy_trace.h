// Per-rail energy accounting — the simulation-side equivalent of TI's
// EnergyTrace tooling the paper uses for measurements (SSIII-D).
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace ehdnn::dev {

enum class Rail : std::size_t {
  kCpu = 0,
  kLea,
  kDma,
  kSramRead,
  kSramWrite,
  kFramRead,
  kFramWrite,
  kCount,
};

inline const char* rail_name(Rail r) {
  switch (r) {
    case Rail::kCpu: return "cpu";
    case Rail::kLea: return "lea";
    case Rail::kDma: return "dma";
    case Rail::kSramRead: return "sram_rd";
    case Rail::kSramWrite: return "sram_wr";
    case Rail::kFramRead: return "fram_rd";
    case Rail::kFramWrite: return "fram_wr";
    case Rail::kCount: break;
  }
  return "?";
}

class EnergyTrace {
 public:
  void add(Rail rail, double joules, double cycles) {
    energy_[static_cast<std::size_t>(rail)] += joules;
    cycles_[static_cast<std::size_t>(rail)] += cycles;
    total_energy_ += joules;
    total_cycles_ += cycles;
  }

  double energy(Rail rail) const { return energy_[static_cast<std::size_t>(rail)]; }
  double cycles(Rail rail) const { return cycles_[static_cast<std::size_t>(rail)]; }
  double total_energy() const { return total_energy_; }
  double total_cycles() const { return total_cycles_; }

  void reset() {
    energy_.fill(0.0);
    cycles_.fill(0.0);
    total_energy_ = 0.0;
    total_cycles_ = 0.0;
  }

  // Lightweight marker for measuring deltas around a region of interest
  // (e.g. a checkpoint): snapshot then subtract.
  struct Snapshot {
    double energy = 0.0;
    double cycles = 0.0;
  };
  Snapshot snapshot() const { return {total_energy_, total_cycles_}; }
  Snapshot delta(const Snapshot& since) const {
    return {total_energy_ - since.energy, total_cycles_ - since.cycles};
  }

 private:
  std::array<double, static_cast<std::size_t>(Rail::kCount)> energy_{};
  std::array<double, static_cast<std::size_t>(Rail::kCount)> cycles_{};
  double total_energy_ = 0.0;
  double total_cycles_ = 0.0;
};

}  // namespace ehdnn::dev
