// The MSP430FR5994-class device model: CPU + LEA + DMA + SRAM + FRAM,
// costed by CostModel, powered through PowerSupply.
//
// Every method that represents on-device work (1) computes its cycle and
// energy cost, (2) draws that energy from the supply, throwing
// PowerFailure on brown-out, and (3) applies its architectural effect to
// the real memory contents. Mutating operations that touch non-volatile
// FRAM are word-granular so a power failure can leave a partially written
// FRAM region — exactly the hazard the intermittent runtimes must handle.
// LEA operations read and write SRAM only, so their all-or-nothing
// modelling is unobservable (SRAM is scrambled at reboot anyway).
//
// Default geometry matches the evaluation board: 8 KB SRAM (4 K words),
// 256 KB FRAM (128 K words), 16 MHz. The LEA owns no memory of its own; it
// operates on SRAM like the real block (which shares the lower SRAM bank).
#pragma once

#include <cstdint>
#include <optional>

#include "device/cost_model.h"
#include "device/energy_trace.h"
#include "device/memory.h"
#include "device/power_interface.h"
#include "dsp/fft.h"
#include "fixed/cq15.h"

namespace ehdnn::dev {

struct DeviceConfig {
  std::size_t sram_words = 4 * 1024;    // 8 KB
  std::size_t fram_words = 128 * 1024;  // 256 KB
  CostModel cost;
  std::uint64_t scramble_seed = 0xdeadbeef;
};

class Device {
 public:
  explicit Device(DeviceConfig cfg = {});

  // Attach the supply (non-owning). Without one the device is on bench
  // power: nothing ever fails.
  void attach_supply(PowerSupply* supply) { supply_ = supply; }
  PowerSupply* supply() { return supply_; }

  MemoryRegion& sram() { return sram_; }
  MemoryRegion& fram() { return fram_; }
  const MemoryRegion& sram() const { return sram_; }
  const MemoryRegion& fram() const { return fram_; }
  MemoryRegion& region(MemKind k) { return k == MemKind::kSram ? sram_ : fram_; }

  EnergyTrace& trace() { return trace_; }
  const EnergyTrace& trace() const { return trace_; }
  const CostModel& cost() const { return cfg_.cost; }

  double elapsed_cycles() const { return trace_.total_cycles(); }
  double elapsed_seconds() const { return cfg_.cost.seconds(trace_.total_cycles()); }
  long reboots() const { return reboots_; }

  // ---- CPU ------------------------------------------------------------
  // n generic ALU cycles (loop control, compares, pointer arithmetic).
  void cpu_ops(double n_ops);
  // One 16x16+32 software MAC through the MPY32 peripheral (operands must
  // already be in registers; memory traffic is charged separately).
  void cpu_mac_cycles();

  // Costed word accesses from the CPU.
  fx::q15_t read(MemKind mem, Addr a);
  void write(MemKind mem, Addr a, fx::q15_t v);

  // ---- DMA ------------------------------------------------------------
  // Bulk copy; word-granular effect application so FRAM writes can be
  // torn by a power failure.
  void dma_copy(MemKind src_mem, Addr src, MemKind dst_mem, Addr dst, std::size_t words);

  // ---- LEA vector ops (SRAM operands only) ------------------------------
  // MAC: sum of products over n q15 elements, 64-bit simulation accumulator
  // (Q30 units). The real block has a 32-bit accumulator; overflow beyond
  // it is reported through `overflow` when provided.
  std::int64_t lea_mac(Addr a, Addr b, std::size_t n, bool* overflow = nullptr);

  // Element-wise ops.
  void lea_add(Addr a, Addr b, Addr out, std::size_t n, fx::SatStats* stats = nullptr);
  void lea_mpy(Addr a, Addr b, Addr out, std::size_t n, fx::SatStats* stats = nullptr);
  void lea_shift(Addr a, Addr out, std::size_t n, int left_shift,
                 fx::SatStats* stats = nullptr);
  // Complex multiply over interleaved (re,im) buffers of n complex elems.
  void lea_cmul(Addr a, Addr b, Addr out, std::size_t n, fx::SatStats* stats = nullptr);

  // In-place FFT/IFFT over n interleaved complex elements at `a`
  // (2n words). Returns the scaling exponent increment (see dsp/fft.h).
  int lea_fft(Addr a, std::size_t n, dsp::FftScaling scaling, fx::SatStats* stats = nullptr);
  int lea_ifft(Addr a, std::size_t n, dsp::FftScaling scaling, fx::SatStats* stats = nullptr);

  // ---- power ------------------------------------------------------------
  // Reboot after a power failure: SRAM scrambled, FRAM retained.
  // (The runtime decides what to do next; boot-time cost is charged.)
  void reboot();

  // Sample the supply voltage (the FLEX voltage-monitor read; costs a few
  // CPU cycles for the comparator/ADC poll).
  double sample_voltage();

 private:
  void spend(Rail rail, double cycles, double extra_energy_joules, double active_power_watts);

  DeviceConfig cfg_;
  MemoryRegion sram_;
  MemoryRegion fram_;
  EnergyTrace trace_;
  PowerSupply* supply_ = nullptr;
  Rng scramble_rng_;
  long reboots_ = 0;
};

}  // namespace ehdnn::dev
