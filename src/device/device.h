// The MSP430FR5994-class device model: CPU + LEA + DMA + SRAM + FRAM,
// costed by CostModel, powered through PowerSupply.
//
// Every method that represents on-device work (1) computes its cycle and
// energy cost, (2) draws that energy from the supply, throwing
// PowerFailure on brown-out, and (3) applies its architectural effect to
// the real memory contents. Mutating operations that touch non-volatile
// FRAM are word-granular so a power failure can leave a partially written
// FRAM region — exactly the hazard the intermittent runtimes must handle.
// LEA operations read and write SRAM only, so their all-or-nothing
// modelling is unobservable (SRAM is scrambled at reboot anyway).
//
// Default geometry matches the evaluation board: 8 KB SRAM (4 K words),
// 256 KB FRAM (128 K words), 16 MHz. The LEA owns no memory of its own; it
// operates on SRAM like the real block (which shares the lower SRAM bank).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "device/cost_model.h"
#include "device/energy_trace.h"
#include "device/memory.h"
#include "device/power_interface.h"
#include "dsp/fft.h"
#include "fixed/cq15.h"

namespace ehdnn::dev {

struct DeviceConfig {
  std::size_t sram_words = 4 * 1024;    // 8 KB
  std::size_t fram_words = 128 * 1024;  // 256 KB
  CostModel cost;
  std::uint64_t scramble_seed = 0xdeadbeef;
};

// Recycled backing storage for a device's memory regions. A retired
// device donates its word buffers via release_slabs(); constructing the
// next device from them (fleet arena) skips the two dominant per-device
// heap allocations. Semantically inert: a slab-built device is
// indistinguishable from a freshly allocated one.
struct DeviceSlabs {
  std::vector<fx::q15_t> sram, fram;
};

class Device {
 public:
  explicit Device(DeviceConfig cfg = {}, DeviceSlabs* slabs = nullptr);

  // Donate the memory regions' backing storage into `out` for reuse by a
  // future Device. The device must not be used afterwards.
  void release_slabs(DeviceSlabs& out) {
    out.sram = sram_.take_storage();
    out.fram = fram_.take_storage();
  }

  // Attach the supply (non-owning). Without one the device is on bench
  // power: nothing ever fails.
  void attach_supply(PowerSupply* supply) {
    supply_ = supply;
    prepay_supported_ = supply != nullptr && supply->prepay_safe();
    // One capacity-sized reservation up front keeps the per-spend
    // push_back growth-free for the window's whole lifetime.
    if (prepay_supported_) prepaid_.reserve(kPrepaidMaxEvents);
  }
  PowerSupply* supply() { return supply_; }
  const PowerSupply* supply() const { return supply_; }

  MemoryRegion& sram() { return sram_; }
  MemoryRegion& fram() { return fram_; }
  const MemoryRegion& sram() const { return sram_; }
  const MemoryRegion& fram() const { return fram_; }
  MemoryRegion& region(MemKind k) { return k == MemKind::kSram ? sram_ : fram_; }

  EnergyTrace& trace() { return trace_; }
  const EnergyTrace& trace() const { return trace_; }
  const CostModel& cost() const { return cfg_.cost; }
  // The construction-time geometry/cost configuration — what a scratch
  // replica of this device must be built from (the scheduler's
  // completion-model calibration runs on such replicas).
  const DeviceConfig& config() const { return cfg_; }

  double elapsed_cycles() const { return trace_.total_cycles(); }
  double elapsed_seconds() const { return cfg_.cost.seconds(trace_.total_cycles()); }
  long reboots() const { return reboots_; }

  // ---- CPU ------------------------------------------------------------
  // n generic ALU cycles (loop control, compares, pointer arithmetic).
  void cpu_ops(double n_ops);
  // One 16x16+32 software MAC through the MPY32 peripheral (operands must
  // already be in registers; memory traffic is charged separately).
  void cpu_mac_cycles();

  // Costed word accesses from the CPU.
  fx::q15_t read(MemKind mem, Addr a);
  void write(MemKind mem, Addr a, fx::q15_t v);

  // ---- bulk CPU accesses ----------------------------------------------
  // Block transfers with the exact cost model of the equivalent scalar
  // read()/write() sequence, charged as ONE bounds check and ONE
  // aggregated cost/energy event per call instead of one per word. When
  // the supply's headroom cannot cover a whole block, every bulk entry
  // point falls back to the scalar per-word sequence, so a brown-out
  // mid-block leaves the same word-granular clean FRAM prefix AND the
  // same prefix-only trace/supply accounting the scalar path would.
  // (Under a *time-varying* harvest source the aggregated draw samples
  // income once per block, so later failure timing may shift vs. the
  // scalar path — see PowerSupply::headroom; outputs and cost totals are
  // unaffected.)
  //
  // set_bulk_enabled(false) forces every bulk entry point through the
  // scalar per-word loops — the reference mode the perf harness and the
  // equivalence tests compare against.
  bool bulk_enabled() const { return bulk_enabled_; }
  void set_bulk_enabled(bool on) { bulk_enabled_ = on; }

  // out[i] = mem[a + i], costed as out.size() scalar reads.
  void read_block(MemKind mem, Addr a, std::span<fx::q15_t> out);
  // mem[a + i] = v[i], costed as v.size() scalar writes.
  void write_block(MemKind mem, Addr a, std::span<const fx::q15_t> v);
  // Gathered read: out[i] = mem[base + offsets[i]]. `span_words` bounds
  // the window [base, base + span_words) that all offsets fall in — the
  // single range check that replaces the per-word ones. A caller whose
  // offsets are in-span BY CONSTRUCTION (the compile-time gather plans:
  // LayerPlan records span = max offset + 1 while building the table)
  // passes offsets_in_span=true to skip the per-element guard; the
  // invariant is still assert()-checked in debug builds.
  void read_gather(MemKind mem, Addr base, std::span<const std::uint32_t> offsets,
                   std::size_t span_words, std::span<fx::q15_t> out,
                   bool offsets_in_span = false);
  // LEA MAC over SRAM operand blocks (identical cost and semantics to
  // lea_mac, which delegates here): one bounds check per operand and a
  // tight pointer loop instead of per-word peeks.
  std::int64_t mac_block(Addr a, Addr b, std::size_t n, bool* overflow = nullptr);
  // CPU copy loop (the non-DMA arm of ACE's data-movement decision):
  // per word, 2 ALU ops + one read + one write, charged as three
  // aggregated events. Torn-prefix semantics preserved for FRAM
  // destinations as with write_block.
  void cpu_copy(MemKind src_mem, Addr src, MemKind dst_mem, Addr dst, std::size_t words);

  // ---- DMA ------------------------------------------------------------
  // Bulk copy; word-granular effect application so FRAM writes can be
  // torn by a power failure.
  void dma_copy(MemKind src_mem, Addr src, MemKind dst_mem, Addr dst, std::size_t words);

  // ---- LEA vector ops (SRAM operands only) ------------------------------
  // MAC: sum of products over n q15 elements, 64-bit simulation accumulator
  // (Q30 units). The real block has a 32-bit accumulator; overflow beyond
  // it is reported through `overflow` when provided.
  std::int64_t lea_mac(Addr a, Addr b, std::size_t n, bool* overflow = nullptr);

  // Element-wise ops.
  void lea_add(Addr a, Addr b, Addr out, std::size_t n, fx::SatStats* stats = nullptr);
  void lea_mpy(Addr a, Addr b, Addr out, std::size_t n, fx::SatStats* stats = nullptr);
  void lea_shift(Addr a, Addr out, std::size_t n, int left_shift,
                 fx::SatStats* stats = nullptr);
  // Complex multiply over interleaved (re,im) buffers of n complex elems.
  void lea_cmul(Addr a, Addr b, Addr out, std::size_t n, fx::SatStats* stats = nullptr);

  // In-place FFT/IFFT over n interleaved complex elements at `a`
  // (2n words). Returns the scaling exponent increment (see dsp/fft.h).
  int lea_fft(Addr a, std::size_t n, dsp::FftScaling scaling, fx::SatStats* stats = nullptr);
  int lea_ifft(Addr a, std::size_t n, dsp::FftScaling scaling, fx::SatStats* stats = nullptr);

  // ---- power ------------------------------------------------------------
  // Reboot after a power failure: SRAM scrambled, FRAM retained.
  // (The runtime decides what to do next; boot-time cost is charged.)
  void reboot();

  // Sample the supply voltage (the FLEX voltage-monitor read; costs a few
  // CPU cycles for the comparator/ADC poll). Settles any open prepaid
  // window first — the comparator reads the true, settled store.
  double sample_voltage();

  // ---- prepaid-headroom settlement --------------------------------------
  // Against a prepay_safe() supply, spend() arms a window from
  // PowerSupply::prepaid_budget() and buffers draws against a local
  // accumulator instead of routing each through virtual consume(). The
  // buffered draws are replayed in order (consume_batch) at settlement
  // points — slice boundaries (the executor calls settle_supply), voltage
  // samples, and any state-dependent query — so supply-side arithmetic,
  // income sampling, and failure instants are bit-identical to per-op
  // settlement. Draws the budget cannot cover settle per-op, which is
  // what keeps brown-out instants (and the fuzzer's schedules) exact.
  void settle_supply();
  bool prepaid_window_open() const { return prepaid_open_; }

 private:
  // Settlement windows are bounded so the supply's budget slack
  // (PowerSupply::prepaid_budget) covers the worst-case replay rounding.
  static constexpr std::size_t kPrepaidMaxEvents = 4096;

  // Every costed op funnels through here, ~10M times per fleet-bench
  // device-second — so the common case (an open prepaid window with
  // budget to spare) is inline: cost arithmetic, trace bookkeeping, and
  // one buffered event. Everything else (settlement, arming a new
  // window, per-op consume near brown-out) is the out-of-line tail.
  void spend(Rail rail, double cycles, double extra_energy_joules,
             double active_power_watts) {
    const double dt = cfg_.cost.seconds(cycles);
    const double joules = active_power_watts * dt + extra_energy_joules;
    trace_.add(rail, joules, cycles);
    if (supply_ == nullptr) return;
    if (prepaid_open_ && joules <= prepaid_budget_ &&
        prepaid_.size() < kPrepaidMaxEvents) {
      prepaid_budget_ -= joules;
      prepaid_.push_back({joules, dt});
      return;
    }
    spend_slow(joules, dt);
  }
  void spend_slow(double joules, double dt);

  // Construction-time image of what spend() computes for a fixed-cycle
  // op — the scalar word accesses and the MPY32 MAC run millions of
  // times with constant cost, so the division and energy arithmetic are
  // done once, with identical rounding (the ctor evaluates the exact
  // spend() expressions).
  struct FixedOpCost {
    double cycles = 0.0, dt = 0.0, joules = 0.0;
  };
  FixedOpCost fixed_cost(double cycles, double extra_energy_joules,
                         double active_power_watts) const {
    const double dt = cfg_.cost.seconds(cycles);
    return {cycles, dt, active_power_watts * dt + extra_energy_joules};
  }
  void spend_fixed(Rail rail, const FixedOpCost& c) {
    trace_.add(rail, c.joules, c.cycles);
    if (supply_ == nullptr) return;
    if (prepaid_open_ && c.joules <= prepaid_budget_ &&
        prepaid_.size() < kPrepaidMaxEvents) {
      prepaid_budget_ -= c.joules;
      prepaid_.push_back({c.joules, c.dt});
      return;
    }
    spend_slow(c.joules, c.dt);
  }

  // True when an aggregated draw of `joules` provably cannot brown out,
  // so per-word accounting can be collapsed without changing which FRAM
  // words commit before a failure. (Non-const: deciding may require
  // settling the prepaid window to read true headroom.)
  bool can_bulk_spend(double joules);
  // Total joules spend() would draw for `cycles` at `watts` plus extras.
  double spend_joules(double cycles, double extra_energy_joules, double watts) const {
    return watts * cfg_.cost.seconds(cycles) + extra_energy_joules;
  }

  DeviceConfig cfg_;
  FixedOpCost c_sram_rd_, c_sram_wr_, c_fram_rd_, c_fram_wr_, c_cpu_mac_;
  MemoryRegion sram_;
  MemoryRegion fram_;
  EnergyTrace trace_;
  PowerSupply* supply_ = nullptr;
  Rng scramble_rng_;
  long reboots_ = 0;
  bool bulk_enabled_ = true;
  bool prepay_supported_ = false;  // cached supply->prepay_safe()
  bool prepaid_open_ = false;
  double prepaid_budget_ = 0.0;    // remaining armed budget (joules)
  std::vector<SpendEvent> prepaid_;
  std::vector<fx::cq15> fft_scratch_;  // reused by lea_fft/lea_ifft
};

}  // namespace ehdnn::dev
