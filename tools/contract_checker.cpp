// contract_checker — exhaustive small-state model checking of the
// scheduler contracts (sched/contracts.h; statements + closure evidence
// in CONTRACTS.md).
//
//   contract_checker                      # bounded grid (the ctest subset)
//   contract_checker --depth full         # the full cross product
//   contract_checker --list-worlds        # print every serialized world
//   contract_checker --world "world ..."  # replay one serialized world
//   contract_checker --calibration        # the tiny fixture's tier costs
//
// Output is deterministic: byte-identical across runs and --jobs N (no
// host clocks, results reduced in world order). Exit 0 on PASS, 1 on any
// violation, 2 on a malformed command line.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sched/contracts.h"
#include "util/check.h"
#include "util/cli.h"

namespace contract = ehdnn::sched::contract;

namespace {

int run_replay(const std::vector<std::string>& lines, int jobs, bool dump,
               std::ostream& os) {
  std::vector<contract::World> worlds;
  std::vector<contract::RelockWorld> relocks;
  for (const std::string& line : lines) {
    if (line.rfind("relock", 0) == 0) {
      relocks.push_back(contract::parse_relock_world(line));
    } else {
      worlds.push_back(contract::parse_world(line));
    }
  }
  if (dump) {
    // Counterexample forensics: per-job twin verdicts and the budget
    // twin's decision log (same evidence the contracts are checked on).
    for (const auto& w : worlds) {
      const contract::WorldResult res = contract::run_world(w);
      os << contract::serialize_world(w) << "\n";
      for (const auto& o : res.jobs) {
        os << "  job " << o.job << ": "
           << (o.budget_skipped ? "skip stage=" + std::to_string(o.budget_stage)
                                : std::string(o.budget_met ? "met" : "miss"))
           << " all=" << (o.all_met ? "met" : "miss") << "\n";
      }
      for (const auto& d : res.budget_decisions) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "  decide t=%.6g tier=%s%s fc_samples=%ld fc_period=%.6g "
                      "forecast=%.6g ovh=%.6g dl=%.6g",
                      d.t_s, d.tier.c_str(), d.demote ? " DEMOTE" : "", d.fc_samples,
                      d.fc_period_s, d.forecast_w, d.ovh_j, d.deadline_s);
        os << buf << "\n";
      }
    }
  }
  const contract::Report rep = contract::check(worlds, relocks, jobs);
  contract::write_report(os, rep, "replay");
  return rep.pass() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string depth = "bounded";
  std::string out_path;
  int jobs = 1;
  std::vector<std::string> replay;
  bool list_worlds = false;
  bool calibration = false;
  bool dump = false;

  ehdnn::CliParser p("contract_checker",
                     "Enumerates discretized scheduler worlds to closure and checks the "
                     "formal admission/tier/forecast contracts (CONTRACTS.md).");
  p.value("--depth", "bounded|full", "grid depth (default bounded: the <60 s ctest subset)",
          [&](const std::string& v) {
            ehdnn::check(v == "bounded" || v == "full",
                         "--depth must be bounded or full");
            depth = v;
          })
      .int_min("--jobs", "N", "worker threads (output is byte-identical for any N)",
               &jobs, 1)
      .str("--out", "FILE", "write the report to FILE instead of stdout", &out_path)
      .value("--world", "LINE",
             "replay one serialized world/relock line instead of a grid (repeatable)",
             [&](const std::string& v) { replay.push_back(v); })
      .flag("--list-worlds", "print every serialized world of the grid and exit",
            [&]() { list_worlds = true; })
      .flag("--dump", "with --world: also print per-job verdicts and the decision log",
            [&]() { dump = true; })
      .flag("--calibration",
            "print the tiny fixture's calibrated per-tier costs and exit",
            [&]() { calibration = true; });
  if (const int rc = p.parse(argc, argv); rc >= 0) return rc;

  try {
    const contract::Depth d =
        depth == "full" ? contract::Depth::kFull : contract::Depth::kBounded;

    if (calibration) {
      // Evidence for the grid axis choices (recorded in CONTRACTS.md):
      // the tiny fixture's calibrated continuous-power costs per tier,
      // plus the derived draw rate the income axis straddles.
      const ehdnn::sched::CompletionModel& cm = contract::fixture_completion_model();
      std::printf("# tiny fixture calibration (continuous power, scratch device)\n");
      std::printf("%-6s %-5s %12s %12s %12s\n", "tier", "pers", "energy_j", "on_s",
                  "draw_w");
      for (const auto& t : cm.tiers()) {
        std::printf("%-6s %-5s %12.5g %12.5g %12.5g\n", t.key.c_str(),
                    t.persistent ? "yes" : "no", t.energy_j, t.on_s,
                    t.energy_j / t.on_s);
      }
      return 0;
    }

    std::ofstream of;
    std::ostream* os = &std::cout;
    if (!out_path.empty()) {
      of.open(out_path, std::ios::binary);
      ehdnn::check(of.good(), "cannot open --out " + out_path);
      os = &of;
    }

    if (!replay.empty()) return run_replay(replay, jobs, dump, *os);

    if (list_worlds) {
      for (const auto& w : contract::world_grid(d)) {
        *os << contract::serialize_world(w) << "\n";
      }
      for (const auto& w : contract::relock_grid(d)) {
        *os << contract::serialize_world(w) << "\n";
      }
      return 0;
    }

    const contract::Report rep = contract::check_depth(d, jobs);
    contract::write_report(*os, rep, depth);
    return rep.pass() ? 0 : 1;
  } catch (const ehdnn::Error& e) {
    std::cerr << "contract_checker: " << e.what() << "\n";
    return 2;
  }
}
