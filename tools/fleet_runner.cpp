// Fleet-simulation CLI: steps N independent intermittent devices
// round-robin against time-offset views of one harvest environment and
// writes FLEET.json (schema ehdnn-fleet-v1; see BENCHMARKS.md "Fleet").
// Run from the repo root so the default trace path resolves:
//
//   ./build/fleet_runner --out FLEET.json               # 64-dev office RF
//   ./build/fleet_runner --devices 256 --task har --runtime tails
//   ./build/fleet_runner --source "rf:base=0.2e-3,burst=6e-3,rate=40,dur=4e-3"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "sim/fleet.h"
#include "util/check.h"

namespace {

using namespace ehdnn;

models::Task parse_task(const std::string& name) {
  if (name == "mnist") return models::Task::kMnist;
  if (name == "har") return models::Task::kHar;
  if (name == "okg") return models::Task::kOkg;
  fail("fleet_runner: unknown task \"" + name + "\" (mnist|har|okg)");
}

int usage() {
  std::fprintf(stderr,
               "usage: fleet_runner [--out FILE] [--devices N] [--task mnist|har|okg]\n"
               "         [--runtime base|ace|sonic|tails|flex] [--source SPEC]\n"
               "         [--cap FARADS] [--max-off S] [--spread S] [--seed N] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "FLEET.json";
  sim::FleetOptions opts;
  opts.verbose = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fleet_runner: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--devices") {
      opts.devices = std::atoi(next());
      if (opts.devices < 1) {
        std::fprintf(stderr, "fleet_runner: --devices needs a positive integer\n");
        return 2;
      }
    } else if (arg == "--task") {
      opts.task = parse_task(next());
    } else if (arg == "--runtime") {
      opts.runtime = next();
    } else if (arg == "--source") {
      opts.source = next();
    } else if (arg == "--cap") {
      opts.capacitance_f = std::atof(next());
    } else if (arg == "--max-off") {
      opts.max_off_s = std::atof(next());
    } else if (arg == "--spread") {
      opts.offset_spread_s = std::atof(next());
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--quiet") {
      opts.verbose = false;
    } else {
      return usage();
    }
  }

  try {
    const sim::FleetReport r = sim::run_fleet(opts);

    std::ofstream f(out_path);
    if (!f.good()) {
      std::fprintf(stderr, "fleet_runner: cannot write %s\n", out_path.c_str());
      return 1;
    }
    sim::write_fleet_json(f, r);
    std::fprintf(stderr,
                 "fleet_runner: %d devices -> %d completed (%.1f%%), %d dnf, %d starved; "
                 "latency p50 %.4fs p90 %.4fs p99 %.4fs -> %s\n",
                 opts.devices, r.completed_count, 100.0 * r.completion_rate, r.dnf_count,
                 r.starved_count, r.latency_p50_s, r.latency_p90_s, r.latency_p99_s,
                 out_path.c_str());
  } catch (const Error& e) {
    std::fprintf(stderr, "fleet_runner: %s\n", e.what());
    return 1;
  }
  return 0;
}
