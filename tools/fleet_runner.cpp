// Fleet-simulation CLI: runs a population of independent intermittent
// devices — homogeneous via flags, heterogeneous and duty-cycled via a
// fleet config file — on the event-driven fleet engine, and writes
// FLEET.json (schema ehdnn-fleet-v6; see BENCHMARKS.md "Fleet" and
// "Observability"). Run from the repo root so trace paths resolve:
//
//   ./build/fleet_runner --out FLEET.json               # 64-dev office RF
//   ./build/fleet_runner --config configs/fleet_hetero.cfg --jobs 4
//   ./build/fleet_runner --config configs/fleet_hetero.cfg --compare-fixed
//   ./build/fleet_runner --devices 256 --task har --runtime tails
//
// Lifecycle event traces (Chrome trace_event JSON for Perfetto /
// chrome://tracing, or the deterministic text dump the goldens pin):
//
//   ./build/fleet_runner --config configs/fleet_microcap.cfg
//       --trace-devices 0,8,12 --trace-out microcap.trace.json
//
// Populations too big for one process split into shard partials that
// merge into byte-identical JSON (any shard count, including 1) — trace
// selections ride the partials, so --trace-out belongs on the --merge:
//
//   ./build/fleet_runner --config big.cfg --shards 4 --shard 0 --out s0.part
//   ...                                             --shard 3 --out s3.part
//   ./build/fleet_runner --merge --out FLEET.json s0.part s1.part s2.part s3.part

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "models/zoo.h"
#include "obs/export.h"
#include "sim/fleet.h"
#include "sim/fleet_flags.h"
#include "sim/scenario.h"
#include "util/check.h"
#include "util/cli.h"
#include "util/parse.h"

using namespace ehdnn;

int main(int argc, char** argv) {
  std::string out_path = "FLEET.json";
  std::string config_path;
  sim::FleetRunOptions ropts;
  ropts.verbose = true;
  bool compare_fixed = false;
  int shards = 1, shard = -1;
  bool merge = false;
  std::vector<std::string> merge_inputs;

  // Homogeneous flag-built config; mutually exclusive with --config (a
  // silently ignored --seed or --devices would be worse than an error).
  sim::FleetGroup flag_group;
  flag_group.name = "fleet";
  flag_group.count = 64;
  sim::FleetConfig flag_cfg;
  std::string population_flag;  // last population flag seen

  std::string trace_out, trace_text_out, trace_devices_arg;

  CliParser p("fleet_runner",
              "Runs a fleet of independent intermittent devices against time-offset\n"
              "views of one harvest environment and writes FLEET.json "
              "(ehdnn-fleet-v6).");
  p.str("--out", "FILE", "output path (JSON, or the shard partial)", &out_path);
  p.str("--config", "FILE", "fleet config file (heterogeneous populations)",
        &config_path);
  p.int_min("--jobs", "N", "worker threads (same bytes for any N)", &ropts.jobs, 1);
  p.int_min("--max-resident", "N", "event-engine resident-device window",
            &ropts.max_resident, 1);
  p.toggle("--compare-fixed", "re-run with every fixed runtime as a baseline",
           &compare_fixed);
  p.toggle("--compare-admission", "re-run with energy-budgeted admission off",
           &ropts.compare_admission);
  p.int_min("--shards", "N", "split the population into N process shards", &shards, 1);
  p.int_min("--shard", "I", "run shard I (0-based) and write its partial", &shard, 0);
  p.toggle("--merge", "merge shard partials (the bare arguments) into JSON", &merge);
  // The homogeneous-population flags; each remembers itself for the
  // --config conflict diagnostic.
  auto pop = [&](const char* flag, auto set) {
    return [&population_flag, flag, set](const std::string& v) {
      population_flag = flag;
      set(v);
    };
  };
  auto to_num = [](const char* flag, const std::string& v) {
    const auto d = parse_double(v);
    check(d.has_value(), std::string(flag) + " needs a number, got \"" + v + "\"");
    return *d;
  };
  p.value("--devices", "N", "population size (flag-built fleets)",
          pop("--devices", [&](const std::string& v) {
            flag_group.count = static_cast<int>(to_num("--devices", v));
            check(flag_group.count >= 1, "--devices needs a positive integer");
          }));
  p.value("--task", "mnist|har|okg", "inference task",
          pop("--task",
              [&](const std::string& v) { flag_group.task = models::parse_task(v); }));
  p.value("--runtime", "KEY", "runtime key (see --list-runtimes)",
          pop("--runtime", [&](const std::string& v) { flag_group.agenda.runtime = v; }));
  p.value("--source", "SPEC", "harvest source spec",
          pop("--source", [&](const std::string& v) { flag_cfg.source = v; }));
  p.value("--cap", "FARADS", "per-device capacitance",
          pop("--cap",
              [&](const std::string& v) { flag_group.capacitance_f = to_num("--cap", v); }));
  p.value("--max-off", "S", "starvation guard (max continuous off-time)",
          pop("--max-off",
              [&](const std::string& v) { flag_group.max_off_s = to_num("--max-off", v); }));
  p.value("--njobs", "N", "jobs per device agenda",
          pop("--njobs", [&](const std::string& v) {
            flag_group.agenda.jobs = static_cast<int>(to_num("--njobs", v));
          }));
  p.value("--period", "S", "agenda release period",
          pop("--period",
              [&](const std::string& v) { flag_group.agenda.period_s = to_num("--period", v); }));
  p.value("--deadline", "S", "per-job deadline",
          pop("--deadline", [&](const std::string& v) {
            flag_group.agenda.deadline_s = to_num("--deadline", v);
          }));
  p.value("--spread", "S", "harvest offset spread across the population",
          pop("--spread",
              [&](const std::string& v) { flag_cfg.offset_spread_s = to_num("--spread", v); }));
  p.value("--seed", "N", "population seed",
          pop("--seed", [&](const std::string& v) {
            flag_cfg.seed = std::strtoull(v.c_str(), nullptr, 0);
          }));
  p.toggle("--quiet", "suppress the per-device progress lines", &ropts.verbose, false);
  bool profile = false;
  p.toggle("--profile", "print a host wall-clock phase breakdown (serial runs)",
           &profile);
  p.str("--trace-devices", "ID[,ID...]",
        "device ids whose lifecycle event rings are retained for export",
        &trace_devices_arg);
  p.str("--trace-out", "FILE",
        "write the retained rings as Chrome trace_event JSON (Perfetto)", &trace_out);
  p.str("--trace-text-out", "FILE",
        "write the retained rings as the deterministic text dump", &trace_text_out);
  p.value("--trace-capacity", "N", "events retained per traced device",
          [&](const std::string& v) {
            ropts.trace_capacity = static_cast<long>(to_num("--trace-capacity", v));
            check(ropts.trace_capacity >= 1, "--trace-capacity needs a positive integer");
          });
  add_listing_flags(p);
  p.positionals("PARTIAL", "shard partial files to --merge",
                [&](const std::string& v) { merge_inputs.push_back(v); });

  if (const int rc = p.parse(argc, argv); rc >= 0) return rc;

  // Comma-separated trace selection -> FleetRunOptions::trace_devices.
  if (!trace_devices_arg.empty()) {
    std::size_t pos = 0;
    while (pos <= trace_devices_arg.size()) {
      std::size_t comma = trace_devices_arg.find(',', pos);
      if (comma == std::string::npos) comma = trace_devices_arg.size();
      const std::string item = trace_devices_arg.substr(pos, comma - pos);
      pos = comma + 1;
      const auto d = parse_double(item);
      if (!d.has_value() || *d < 0 || *d != static_cast<double>(static_cast<int>(*d))) {
        std::fprintf(stderr,
                     "fleet_runner: --trace-devices needs comma-separated device ids, "
                     "got \"%s\"\n",
                     item.c_str());
        return 2;
      }
      ropts.trace_devices.push_back(static_cast<int>(*d));
    }
  }

  // One table-tested conflict matrix (sim/fleet_flags.h) instead of
  // checks scattered across the three mode branches below.
  {
    sim::FleetFlagSet fs;
    fs.merge = merge;
    fs.merge_inputs = static_cast<int>(merge_inputs.size());
    fs.have_config = !config_path.empty();
    fs.population_flag = population_flag;
    fs.shards = shards;
    fs.shard = shard;
    fs.compare_fixed = compare_fixed;
    fs.compare_admission = ropts.compare_admission;
    fs.profile = profile;
    fs.jobs = ropts.jobs;
    fs.have_trace_out = !trace_out.empty();
    fs.have_trace_text_out = !trace_text_out.empty();
    fs.have_trace_devices = !trace_devices_arg.empty();
    if (const std::string err = sim::validate_fleet_flags(fs); !err.empty()) {
      std::fprintf(stderr, "fleet_runner: %s\n", err.c_str());
      return 2;
    }
  }

  try {
    // Trace exporters, shared by the full-run and --merge paths (shard
    // partials carry their captures; the merge reassembles them).
    auto write_traces = [&](const sim::FleetReport& r) {
      if (!trace_out.empty()) {
        std::ofstream tf(trace_out);
        check(tf.good(), "cannot write " + trace_out);
        obs::write_chrome_trace(tf, r.traces);
        std::fprintf(stderr, "fleet_runner: %zu trace tracks -> %s\n", r.traces.size(),
                     trace_out.c_str());
      }
      if (!trace_text_out.empty()) {
        std::ofstream tf(trace_text_out);
        check(tf.good(), "cannot write " + trace_text_out);
        obs::write_text_trace(tf, r.traces);
        std::fprintf(stderr, "fleet_runner: %zu trace tracks -> %s\n", r.traces.size(),
                     trace_text_out.c_str());
      }
    };

    if (merge) {
      const sim::FleetReport r = sim::merge_fleet_shards(merge_inputs);
      std::ofstream f(out_path);
      check(f.good(), "cannot write " + out_path);
      sim::write_fleet_json(f, r);
      write_traces(r);
      std::fprintf(stderr, "fleet_runner: merged %zu shards, %d devices -> %s\n",
                   merge_inputs.size(), r.config.total_devices(), out_path.c_str());
      return 0;
    }

    sim::FleetConfig cfg;
    if (!config_path.empty()) {
      cfg = sim::parse_fleet_config_file(config_path);
    } else {
      flag_cfg.groups.push_back(flag_group);
      cfg = flag_cfg;
    }

    if (shard >= 0 || shards > 1) {
      std::ofstream f(out_path);
      check(f.good(), "cannot write " + out_path);
      sim::FleetEngine(cfg).run_shard(f, shard, shards, ropts);
      std::fprintf(stderr, "fleet_runner: shard %d/%d -> %s\n", shard, shards,
                   out_path.c_str());
      return 0;
    }

    flex::PhaseProfile prof;
    if (profile) ropts.profile = &prof;

    if (compare_fixed) {
      // Every fixed key from the runtime table (the adaptive key is the
      // subject, not a baseline).
      for (const auto& k : sim::all_runtime_keys()) {
        if (!sim::runtime_is_adaptive(k)) ropts.baseline_runtimes.push_back(k);
      }
    }

    const sim::FleetReport r = sim::run_fleet(cfg, ropts);

    std::ofstream f(out_path);
    check(f.good(), "cannot write " + out_path);
    sim::write_fleet_json(f, r);
    write_traces(r);
    std::fprintf(stderr,
                 "fleet_runner: %d devices, %d jobs -> %d completed (%.1f%%), %d in "
                 "deadline (%.1f%%); latency p50 %.4fs p90 %.4fs p99 %.4fs -> %s\n",
                 cfg.total_devices(), r.total_jobs, r.jobs_completed,
                 100.0 * r.completion_rate, r.jobs_in_deadline, 100.0 * r.deadline_rate,
                 r.latency_p50_s, r.latency_p90_s, r.latency_p99_s, out_path.c_str());
    if (profile) {
      const double total =
          prof.build_s + prof.recharge_s + prof.kernel_s + prof.checkpoint_s + prof.engine_s;
      std::fprintf(stderr,
                   "fleet_runner: profile (host seconds, main run): total %.3f | "
                   "build %.3f | recharge %.3f (%ld recoveries) | kernel %.3f "
                   "(%ld slices) | checkpoint %.3f (%ld writes) | engine %.3f\n",
                   total, prof.build_s, prof.recharge_s, *prof.recoveries, prof.kernel_s,
                   *prof.slices, prof.checkpoint_s, *prof.checkpoints, prof.engine_s);
    }
    if (r.jobs_skipped > 0) {
      std::fprintf(stderr,
                   "fleet_runner: admission skipped %d infeasible releases "
                   "(~%.3g J reclaimed)\n",
                   r.jobs_skipped, r.energy_reclaimed_j);
    }
    for (const auto& b : r.baselines) {
      std::fprintf(stderr, "fleet_runner: baseline %-8s %d completed, %d in deadline\n",
                   b.runtime.c_str(), b.jobs_completed, b.jobs_in_deadline);
    }
    for (const auto& b : r.admission_baseline) {
      std::fprintf(stderr, "fleet_runner: baseline %-8s %d completed, %d in deadline\n",
                   b.runtime.c_str(), b.jobs_completed, b.jobs_in_deadline);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "fleet_runner: %s\n", e.what());
    return 1;
  }
  return 0;
}
