// Fleet-simulation CLI: runs a population of independent intermittent
// devices — homogeneous via flags, heterogeneous and duty-cycled via a
// fleet config file — against time-offset views of one harvest
// environment, and writes FLEET.json (schema ehdnn-fleet-v2; see
// BENCHMARKS.md "Fleet"). Run from the repo root so trace paths resolve:
//
//   ./build/fleet_runner --out FLEET.json               # 64-dev office RF
//   ./build/fleet_runner --config configs/fleet_hetero.cfg --jobs 4
//   ./build/fleet_runner --config configs/fleet_hetero.cfg --compare-fixed
//   ./build/fleet_runner --devices 256 --task har --runtime tails
//   ./build/fleet_runner --list-runtimes

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "power/factory.h"
#include "sim/fleet.h"
#include "sim/scenario.h"
#include "util/check.h"

namespace {

using namespace ehdnn;

int usage() {
  std::fprintf(
      stderr,
      "usage: fleet_runner [--out FILE] [--config FILE] [--jobs N] [--compare-fixed]\n"
      "         [--compare-admission]\n"
      "         [--devices N] [--task mnist|har|okg] [--runtime KEY] [--source SPEC]\n"
      "         [--cap FARADS] [--max-off S] [--njobs N] [--period S] [--deadline S]\n"
      "         [--spread S] [--seed N] [--quiet] [--list-runtimes] [--list-sources]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "FLEET.json";
  std::string config_path;
  sim::FleetRunOptions ropts;
  ropts.verbose = true;
  bool compare_fixed = false;

  // Homogeneous flag-built config; mutually exclusive with --config (a
  // silently ignored --seed or --devices would be worse than an error).
  sim::FleetGroup flag_group;
  flag_group.name = "fleet";
  flag_group.count = 64;
  sim::FleetConfig flag_cfg;
  const char* population_flag = nullptr;  // last population flag seen

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fleet_runner: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--config") {
      config_path = next();
    } else if (arg == "--jobs") {
      ropts.jobs = std::atoi(next());
      if (ropts.jobs < 1) {
        std::fprintf(stderr, "fleet_runner: --jobs needs a positive integer\n");
        return 2;
      }
    } else if (arg == "--compare-fixed") {
      compare_fixed = true;
    } else if (arg == "--compare-admission") {
      ropts.compare_admission = true;
    } else if (arg == "--devices") {
      population_flag = "--devices";
      flag_group.count = std::atoi(next());
      if (flag_group.count < 1) {
        std::fprintf(stderr, "fleet_runner: --devices needs a positive integer\n");
        return 2;
      }
    } else if (arg == "--task") {
      population_flag = "--task";
      try {
        flag_group.task = models::parse_task(next());
      } catch (const Error& e) {
        std::fprintf(stderr, "fleet_runner: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--runtime") {
      population_flag = "--runtime";
      flag_group.agenda.runtime = next();
    } else if (arg == "--source") {
      population_flag = "--source";
      flag_cfg.source = next();
    } else if (arg == "--cap") {
      population_flag = "--cap";
      flag_group.capacitance_f = std::atof(next());
    } else if (arg == "--max-off") {
      population_flag = "--max-off";
      flag_group.max_off_s = std::atof(next());
    } else if (arg == "--njobs") {
      population_flag = "--njobs";
      flag_group.agenda.jobs = std::atoi(next());
    } else if (arg == "--period") {
      population_flag = "--period";
      flag_group.agenda.period_s = std::atof(next());
    } else if (arg == "--deadline") {
      population_flag = "--deadline";
      flag_group.agenda.deadline_s = std::atof(next());
    } else if (arg == "--spread") {
      population_flag = "--spread";
      flag_cfg.offset_spread_s = std::atof(next());
    } else if (arg == "--seed") {
      population_flag = "--seed";
      flag_cfg.seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--quiet") {
      ropts.verbose = false;
    } else if (arg == "--list-runtimes") {
      for (const auto& k : sim::all_runtime_keys()) std::printf("%s\n", k.c_str());
      return 0;
    } else if (arg == "--list-sources") {
      for (const auto& k : power::harvest_source_kinds()) std::printf("%s\n", k.c_str());
      return 0;
    } else {
      return usage();
    }
  }

  if (!config_path.empty() && population_flag != nullptr) {
    std::fprintf(stderr,
                 "fleet_runner: %s conflicts with --config (the population comes from the "
                 "config file; edit it instead)\n",
                 population_flag);
    return 2;
  }

  try {
    sim::FleetConfig cfg;
    if (!config_path.empty()) {
      cfg = sim::parse_fleet_config_file(config_path);
    } else {
      flag_cfg.groups.push_back(flag_group);
      cfg = flag_cfg;
    }
    if (compare_fixed) {
      // Every fixed key from the runtime table (the adaptive key is the
      // subject, not a baseline).
      for (const auto& k : sim::all_runtime_keys()) {
        if (!sim::runtime_is_adaptive(k)) ropts.baseline_runtimes.push_back(k);
      }
    }

    const sim::FleetReport r = sim::run_fleet(cfg, ropts);

    std::ofstream f(out_path);
    if (!f.good()) {
      std::fprintf(stderr, "fleet_runner: cannot write %s\n", out_path.c_str());
      return 1;
    }
    sim::write_fleet_json(f, r);
    std::fprintf(stderr,
                 "fleet_runner: %d devices, %d jobs -> %d completed (%.1f%%), %d in "
                 "deadline (%.1f%%); latency p50 %.4fs p90 %.4fs p99 %.4fs -> %s\n",
                 cfg.total_devices(), r.total_jobs, r.jobs_completed,
                 100.0 * r.completion_rate, r.jobs_in_deadline, 100.0 * r.deadline_rate,
                 r.latency_p50_s, r.latency_p90_s, r.latency_p99_s, out_path.c_str());
    if (r.jobs_skipped > 0) {
      std::fprintf(stderr,
                   "fleet_runner: admission skipped %d infeasible releases "
                   "(~%.3g J reclaimed)\n",
                   r.jobs_skipped, r.energy_reclaimed_j);
    }
    for (const auto& b : r.baselines) {
      std::fprintf(stderr, "fleet_runner: baseline %-8s %d completed, %d in deadline\n",
                   b.runtime.c_str(), b.jobs_completed, b.jobs_in_deadline);
    }
    for (const auto& b : r.admission_baseline) {
      std::fprintf(stderr, "fleet_runner: baseline %-8s %d completed, %d in deadline\n",
                   b.runtime.c_str(), b.jobs_completed, b.jobs_in_deadline);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "fleet_runner: %s\n", e.what());
    return 1;
  }
  return 0;
}
