// Scenario-engine CLI: sweeps runtimes x models x power scenarios and
// writes SCENARIOS.json (schema ehdnn-scenarios-v3; see BENCHMARKS.md
// "Scenarios" and "Observability"). Run from the repo root so the default
// trace scenarios resolve their traces/*.csv paths:
//
//   ./build/scenario_runner --out SCENARIOS.json
//   ./build/scenario_runner --tasks mnist --runtimes ace,flex
//       --scenario office-rf=trace:path=traces/rf_office.csv
//   ./build/scenario_runner --jobs 4        # parallel sweep, same bytes
//   ./build/scenario_runner --trace-cells 5,13 --trace-out sweep.trace.json
//       # retain those cells' lifecycle event rings (canonical sweep
//       # indices: task-major, then scenario, then runtime)
//
// With no --scenario arguments a built-in set is swept: continuous bench
// power, the paper's constant-harvest regime, a square duty cycle, bursty
// Poisson RF, a solar-day ramp, and the committed traces/*.csv files.
// --smoke runs a two-scenario ace/flex MNIST sweep (the ctest entry).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "sim/scenario.h"
#include "util/check.h"
#include "util/cli.h"
#include "util/parse.h"

namespace {

using namespace ehdnn;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<sim::ScenarioSpec> default_scenarios(bool with_traces) {
  std::vector<std::string> args = {
      "continuous=continuous",
      "const-1.2mW=const:w=1.2e-3",
      "square-10ms=square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5",
      "rf-bursty=rf:base=0.2e-3,burst=6e-3,rate=40,dur=4e-3,seed=7,horizon=1",
      "solar-ramp=solar:peak=5e-3,day=0.5,daylight=0.6,floor=0.1e-3",
      // Sparse bursts with a dead floor and a tight off-time guard: every
      // runtime starves — the third outcome the matrix distinguishes.
      "rf-starved=rf:base=0,burst=8e-3,rate=2,dur=10e-3,seed=3,horizon=2;max_off=0.05",
      // Strongly periodic square harvest (long hi/lo phases): the regime
      // the periodic forecaster exists for — deadline-mode tier selection
      // must ride the income swings rather than average them away.
      "square-periodic=square:hi=5e-3,lo=0.1e-3,period=0.4,duty=0.5",
      // Micro-capacitor brown-out ladder (BENCHMARKS.md "Tile runtime").
      // The stored burst is 3.025 J/F x C and the 400-cycle boot sequence
      // alone costs ~142.5 nJ, so the ladder brackets the boot-cost floor:
      //   40 nF  (~121 nJ): below the floor — no runtime can bank a unit;
      //          every intermittence-capable runtime trips the futile-boot
      //          watchdog (bounded livelock DNF, not a 400k-reboot spin).
      //   50 nF  (~151 nJ): ~9 nJ of stored swing past boot. Only the tile
      //          runtime's reduction-tile commits are small enough to ride
      //          the hi-phase income from there; sonic/tails/flex livelock.
      //   80 nF  (~242 nJ): the decisive row — comfortably above the boot
      //          cost, still below SONIC's smallest loop commit. tile (and
      //          the adaptive ladder, which floors to it) completes; every
      //          per-element runtime livelocks.
      //   120 nF (~363 nJ): SONIC's conv loop commits fit again — the tile
      //          advantage window closing from above.
      "microcap-40nF=square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5"
      ";cap=40e-9;max_futile=400;reboots=400000",
      "microcap-50nF=square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5"
      ";cap=50e-9;max_futile=400;reboots=400000",
      "microcap-80nF=square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5"
      ";cap=80e-9;max_futile=400;reboots=400000",
      "microcap-120nF=square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5"
      ";cap=120e-9;max_futile=400;reboots=400000",
  };
  if (with_traces) {
    args.push_back("office-rf=trace:path=traces/rf_office.csv");
    args.push_back("solar-cloudy=trace:path=traces/solar_cloudy.csv");
    args.push_back("wearable-motion=trace:path=traces/wearable_motion.csv");
    // Clean time-compressed solar days (periodic dark gaps), committed
    // alongside the cloudy trace specifically for periodicity detection.
    args.push_back("solar-periodic=trace:path=traces/solar_periodic.csv");
  }
  std::vector<sim::ScenarioSpec> out;
  for (const auto& a : args) out.push_back(sim::parse_scenario_arg(a));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "SCENARIOS.json";
  std::vector<models::Task> tasks = {models::Task::kMnist};
  std::vector<std::string> runtimes = sim::all_runtime_keys();
  std::vector<sim::ScenarioSpec> scenarios;
  bool smoke = false;
  bool smoke_sched = false;
  bool with_traces = true;
  sim::SweepOptions opts;
  opts.verbose = true;

  std::string trace_out, trace_text_out, trace_cells_arg;

  CliParser p("scenario_runner",
              "Sweeps runtimes x models x power scenarios and writes SCENARIOS.json\n"
              "(ehdnn-scenarios-v3).");
  p.str("--out", "FILE", "output path", &out_path);
  p.value("--tasks", "mnist,har,okg", "comma-separated task list",
          [&](const std::string& v) {
            tasks.clear();
            for (const auto& t : split_csv(v)) tasks.push_back(models::parse_task(t));
          });
  p.value("--runtimes", "KEY,KEY,...",
          "runtime keys to sweep (see --list-runtimes; default all)",
          [&](const std::string& v) { runtimes = split_csv(v); });
  p.value("--scenario", "NAME=SPEC[;cap=F][;max_off=S][;reboots=N][;max_futile=N]",
          "add a power scenario (repeatable; default built-in set)",
          [&](const std::string& v) { scenarios.push_back(sim::parse_scenario_arg(v)); });
  p.int_min("--jobs", "N", "worker threads (same bytes for any N)", &opts.jobs, 1);
  p.toggle("--no-traces", "skip the committed traces/*.csv scenarios", &with_traces,
           false);
  p.toggle("--smoke", "tiny ace/flex MNIST sweep with assertions (ctest)", &smoke);
  p.toggle("--smoke-sched", "adaptive-scheduler sweep with assertions (ctest)",
           &smoke_sched);
  p.toggle("--quiet", "suppress the per-cell progress lines", &opts.verbose, false);
  bool profile = false;
  p.toggle("--profile", "print a host wall-clock phase breakdown (serial sweeps)",
           &profile);
  p.str("--trace-cells", "I[,I...]",
        "cell indices whose lifecycle event rings are retained for export",
        &trace_cells_arg);
  p.str("--trace-out", "FILE",
        "write the retained rings as Chrome trace_event JSON (Perfetto)", &trace_out);
  p.str("--trace-text-out", "FILE",
        "write the retained rings as the deterministic text dump", &trace_text_out);
  p.value("--trace-capacity", "N", "events retained per traced cell",
          [&](const std::string& v) {
            const auto d = parse_double(v);
            check(d.has_value() && *d >= 1,
                  "--trace-capacity needs a positive integer, got \"" + v + "\"");
            opts.trace_capacity = static_cast<long>(*d);
          });
  add_listing_flags(p);
  if (const int rc = p.parse(argc, argv); rc >= 0) return rc;

  if (!trace_cells_arg.empty()) {
    for (const auto& item : split_csv(trace_cells_arg)) {
      const auto d = parse_double(item);
      if (!d.has_value() || *d < 0 || *d != static_cast<double>(static_cast<int>(*d))) {
        std::fprintf(stderr,
                     "scenario_runner: --trace-cells needs comma-separated cell "
                     "indices, got \"%s\"\n",
                     item.c_str());
        return 2;
      }
      opts.trace_cells.push_back(static_cast<int>(*d));
    }
  }

  if (smoke_sched) {
    // Scheduling smoke (ctest sched_smoke, run from the repo root): both
    // adaptive runtimes swept against ace/flex over a replayed trace and
    // an ACE-hostile one. Expectations asserted below.
    tasks = {models::Task::kMnist};
    runtimes = {"ace", "flex", "adaptive", "adaptive-deadline"};
    scenarios = {
        sim::parse_scenario_arg("solar-cloudy=trace:path=traces/solar_cloudy.csv"),
        sim::parse_scenario_arg("office-rf=trace:path=traces/rf_office.csv"),
    };
  } else if (smoke) {
    tasks = {models::Task::kMnist};
    runtimes = {"ace", "flex"};
    scenarios = {
        sim::parse_scenario_arg("continuous=continuous"),
        sim::parse_scenario_arg("square-10ms=square:hi=4e-3,lo=0.2e-3,period=0.02,duty=0.5"),
    };
  } else if (scenarios.empty()) {
    scenarios = default_scenarios(with_traces);
  }

  flex::PhaseProfile prof;
  if (profile) {
    if (opts.jobs != 1) {
      std::fprintf(stderr,
                   "scenario_runner: --profile needs --jobs 1 (one shared, "
                   "unsynchronized sink)\n");
      return 2;
    }
    opts.profile = &prof;
  }

  try {
    const sim::ScenarioMatrix m = sim::run_matrix(runtimes, tasks, scenarios, opts);

    std::ofstream f(out_path);
    if (!f.good()) {
      std::fprintf(stderr, "scenario_runner: cannot write %s\n", out_path.c_str());
      return 1;
    }
    sim::write_scenarios_json(f, m);
    std::fprintf(stderr, "scenario_runner: wrote %zu cells to %s\n", m.cells.size(),
                 out_path.c_str());
    if (!trace_out.empty()) {
      std::ofstream tf(trace_out);
      check(tf.good(), "cannot write " + trace_out);
      obs::write_chrome_trace(tf, m.traces);
      std::fprintf(stderr, "scenario_runner: %zu trace tracks -> %s\n", m.traces.size(),
                   trace_out.c_str());
    }
    if (!trace_text_out.empty()) {
      std::ofstream tf(trace_text_out);
      check(tf.good(), "cannot write " + trace_text_out);
      obs::write_text_trace(tf, m.traces);
      std::fprintf(stderr, "scenario_runner: %zu trace tracks -> %s\n", m.traces.size(),
                   trace_text_out.c_str());
    }
    if (profile) {
      std::fprintf(stderr,
                   "scenario_runner: profile (host seconds): recharge %.3f "
                   "(%ld recoveries) | kernel %.3f (%ld slices) | checkpoint %.3f "
                   "(%ld writes)\n",
                   prof.recharge_s, *prof.recoveries, prof.kernel_s, *prof.slices,
                   prof.checkpoint_s, *prof.checkpoints);
    }

    if (smoke) {
      // ctest gate: under the square duty cycle FLEX must complete while
      // plain ACE (no intermittence support) must not — Fig. 7b's "X".
      bool flex_ok = false, ace_dnf = false;
      for (const auto& c : m.cells) {
        if (c.scenario != "square-10ms") continue;
        if (c.runtime == "flex") flex_ok = c.completed();
        if (c.runtime == "ace") ace_dnf = !c.completed();
      }
      if (!flex_ok || !ace_dnf) {
        std::fprintf(stderr, "scenario_runner: smoke expectations FAILED "
                             "(flex completed=%d, ace dnf=%d)\n",
                     flex_ok, ace_dnf);
        return 1;
      }
      std::fprintf(stderr, "scenario_runner: smoke ok (flex completes, ace DNFs)\n");
    }

    if (smoke_sched) {
      // ctest gate: the per-boot scheduler must complete every trace
      // scenario FLEX completes (it can always degrade to the FLEX
      // tier), including office-rf where plain ACE DNFs.
      bool adaptive_all = true, deadline_all = true, flex_all = true, ace_office_dnf = false;
      for (const auto& c : m.cells) {
        if (c.runtime == "adaptive") adaptive_all = adaptive_all && c.completed();
        if (c.runtime == "adaptive-deadline") deadline_all = deadline_all && c.completed();
        if (c.runtime == "flex") flex_all = flex_all && c.completed();
        if (c.runtime == "ace" && c.scenario == "office-rf") ace_office_dnf = !c.completed();
      }
      if (!adaptive_all || !deadline_all || !flex_all || !ace_office_dnf) {
        std::fprintf(stderr,
                     "scenario_runner: sched smoke expectations FAILED "
                     "(adaptive all=%d, adaptive-deadline all=%d, flex all=%d, "
                     "ace office-rf dnf=%d)\n",
                     adaptive_all, deadline_all, flex_all, ace_office_dnf);
        return 1;
      }
      std::fprintf(stderr,
                   "scenario_runner: sched smoke ok (both adaptive modes complete "
                   "everywhere flex does; ace DNFs office-rf)\n");
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "scenario_runner: %s\n", e.what());
    return 1;
  }
  return 0;
}
