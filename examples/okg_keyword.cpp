// Audio scenario: always-on keyword spotting from an RF-harvesting sensor.
// Demonstrates (a) the deepest BCM stack of the paper (256x/128x/64x FCs),
// (b) a trace-driven harvest profile, and (c) a voltage-monitor threshold
// sweep — the knob that trades checkpoint safety margin against wasted
// work (SSIII-C).

#include <cstdio>

#include "core/ace/compiled_model.h"
#include "core/flex/runtime.h"
#include "core/rad/pipeline.h"
#include "power/capacitor.h"
#include "power/monitor.h"
#include "quant/quantize.h"
#include "util/table.h"

int main() {
  using namespace ehdnn;
  Rng rng(33);

  rad::RadConfig cfg;
  cfg.task = models::Task::kOkg;
  cfg.train_samples = 450;
  cfg.test_samples = 100;
  cfg.epochs = 6;
  cfg.sgd.lr = 0.005f;  // the deep BCM stack wants a gentle rate
  std::printf("[OKG] training the Table-II keyword model (BCM 256x/128x/64x)...\n");
  rad::RadResult rad_out = rad::run_rad(cfg, rng);
  std::printf("[OKG] float acc %.1f%%, quantized acc %.1f%%\n",
              100.0 * rad_out.float_accuracy, 100.0 * rad_out.quant_accuracy);

  // Bursty RF harvest trace (e.g. a reader passing by), 10 ms samples.
  std::vector<double> trace;
  Rng trng(5);
  for (int i = 0; i < 400; ++i) {
    const bool burst = (i / 40) % 2 == 0;
    trace.push_back(burst ? trng.uniform(4e-3, 9e-3) : trng.uniform(0.0, 1.0e-3));
  }
  power::TraceSource harvest(trace, 10e-3);

  const auto qin = quant::quantize_input(rad_out.qmodel, rad_out.data.test.x[0]);

  std::printf("[OKG] voltage-monitor threshold sweep (trace-driven RF harvest):\n");
  std::printf("  %-10s %-12s %-9s %-12s %-14s %s\n", "v_warn", "on-time", "reboots",
              "checkpoints", "ckpt energy", "wasted units");
  for (double v_warn : {2.25, 2.35, 2.45, 2.60, 2.90}) {
    dev::Device device;
    power::CapacitorConfig ccfg;
    ccfg.capacitance_f = 10e-6;  // scaled buffer; see EXPERIMENTS.md
    power::CapacitorSupply cap(harvest, ccfg);
    device.attach_supply(&cap);
    const auto cm = ace::compile(rad_out.qmodel, device);
    flex::RunOptions opts;
    opts.flex_v_warn = v_warn;
    auto rt = flex::make_flex_runtime();
    const auto st = rt->infer(device, cm, qin, opts);
    std::printf("  %-10.2f %-12s %-9ld %-12ld %-14s %ld\n", v_warn,
                st.completed() ? (Table::num(st.on_seconds * 1e3, 2) + " ms").c_str() : "DNF",
                st.reboots, st.checkpoints,
                (Table::num(st.checkpoint_energy_j * 1e6, 2) + " uJ").c_str(),
                st.wasted_units());
  }
  std::printf("Lower thresholds risk unwarned failures (more wasted work); higher ones\n"
              "checkpoint earlier than necessary. The library default budgets the\n"
              "worst-case checkpoint energy plus margin (power::warn_voltage_for).\n");
  return 0;
}
