// Quickstart: the whole ehdnn flow in one page.
//
//   1. generate a (synthetic) dataset,
//   2. RAD: train a compressed model and quantize it to 16-bit fixed point,
//   3. ACE: compile it onto the simulated MSP430FR5994-class device,
//   4. run inference on bench power,
//   5. FLEX: run the same inference on harvested power with failures.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/ace/compiled_model.h"
#include "core/flex/runtime.h"
#include "core/rad/pipeline.h"
#include "power/capacitor.h"
#include "power/continuous.h"
#include "power/monitor.h"
#include "quant/quantize.h"
#include "train/loss.h"

int main() {
  using namespace ehdnn;
  Rng rng(2024);

  // --- RAD: train + compress + quantize (small budget for a quick demo) --
  rad::RadConfig cfg;
  cfg.task = models::Task::kMnist;
  cfg.train_samples = 500;
  cfg.test_samples = 150;
  cfg.epochs = 4;
  cfg.sgd.lr = 0.02f;
  cfg.sgd.clip_norm = 1.0f;
  std::printf("[RAD] training the Table-II MNIST model (BCM k=128 FC, pruned conv)...\n");
  rad::RadResult rad_out = rad::run_rad(cfg, rng);
  std::printf("[RAD] float accuracy %.1f%%, 16-bit fixed-point accuracy %.1f%%\n",
              100.0 * rad_out.float_accuracy, 100.0 * rad_out.quant_accuracy);
  std::printf("[RAD] deployable weights: %zu KiB (dense equivalent would be ~%d KiB)\n",
              rad_out.qmodel.weight_bytes() / 1024, (150 * 1024 + 512) / 1024);

  // --- ACE: compile onto the device --------------------------------------
  dev::Device device;
  power::ContinuousPower bench_power;
  device.attach_supply(&bench_power);
  const ace::CompiledModel cm = ace::compile(rad_out.qmodel, device);
  std::printf("[ACE] FRAM used: %zu KiB of 256 KiB; SRAM scratch: %zu of 4096 words\n",
              cm.fram_words_used * 2 / 1024, cm.sram.total_words);

  // --- continuous-power inference ----------------------------------------
  const auto& sample = rad_out.data.test.x[0];
  const auto qin = quant::quantize_input(rad_out.qmodel, sample);
  auto ace_rt = flex::make_ace_runtime();
  const flex::RunStats cont = ace_rt->infer(device, cm, qin);
  const auto logits = std::vector<float>(cont.output.begin(), cont.output.end());
  std::printf("[ACE] continuous power: %.2f ms, %.3f mJ, predicted class %d (label %d)\n",
              cont.on_seconds * 1e3, cont.energy_j * 1e3, train::argmax(logits),
              rad_out.data.test.y[0]);

  // --- FLEX: the same inference on harvested power ------------------------
  dev::Device eh_device;
  power::SquareSource harvest(2e-3, 0.3e-3, /*period=*/0.05, /*duty=*/0.5);
  power::CapacitorConfig ccfg;
  // Buffer scaled so one burst covers only a fraction of the inference
  // (the paper's regime; see EXPERIMENTS.md on capacitor scaling).
  ccfg.capacitance_f = 10e-6;
  power::CapacitorSupply cap(harvest, ccfg);
  eh_device.attach_supply(&cap);
  const ace::CompiledModel cm2 = ace::compile(rad_out.qmodel, eh_device);
  flex::RunOptions opts;
  opts.flex_v_warn = power::warn_voltage_for(
      ccfg, flex::worst_checkpoint_energy(cm2, eh_device.cost()) + 5e-6, 3.0);
  auto flex_rt = flex::make_flex_runtime();
  const flex::RunStats inter = flex_rt->infer(eh_device, cm2, qin, opts);
  std::printf(
      "[FLEX] harvested power: completed=%s through %ld power failures,\n"
      "       on-time %.2f ms (+%.1f%% vs continuous), %ld checkpoints (%.4f mJ),\n"
      "       output bit-identical to continuous: %s\n",
      inter.completed() ? "yes" : "no", inter.reboots, inter.on_seconds * 1e3,
      100.0 * (inter.on_seconds - cont.on_seconds) / cont.on_seconds, inter.checkpoints,
      inter.checkpoint_energy_j * 1e3, inter.output == cont.output ? "yes" : "NO");
  return 0;
}
