// Wearable scenario: human-activity recognition on a kinetic-harvesting
// device. The harvester's output follows body motion (modelled as a sine),
// so power-failure density varies across the gait cycle; FLEX carries the
// FC-heavy HAR model (BCM-compressed 3520x128) through it.

#include <cstdio>

#include "core/ace/compiled_model.h"
#include "core/flex/runtime.h"
#include "core/rad/pipeline.h"
#include "power/capacitor.h"
#include "power/continuous.h"
#include "power/monitor.h"
#include "quant/quantize.h"
#include "train/loss.h"

int main() {
  using namespace ehdnn;
  Rng rng(21);

  rad::RadConfig cfg;
  cfg.task = models::Task::kHar;
  cfg.train_samples = 500;
  cfg.test_samples = 150;
  cfg.epochs = 5;
  cfg.sgd.lr = 0.01f;
  std::printf("[HAR] training the Table-II HAR model (BCM 128x & 64x FCs)...\n");
  rad::RadResult rad_out = rad::run_rad(cfg, rng);
  std::printf("[HAR] float acc %.1f%%, quantized acc %.1f%%, weights %zu KiB\n",
              100.0 * rad_out.float_accuracy, 100.0 * rad_out.quant_accuracy,
              rad_out.qmodel.weight_bytes() / 1024);

  dev::Device device;
  // Kinetic harvest: ~1 Hz gait, mean 3 mW swinging 0..6 mW.
  power::SineSource harvest(3e-3, 3e-3, 1.0);
  power::CapacitorConfig ccfg;
  power::CapacitorSupply cap(harvest, ccfg);
  device.attach_supply(&cap);
  const auto cm = ace::compile(rad_out.qmodel, device);
  flex::RunOptions opts;
  opts.flex_v_warn = power::warn_voltage_for(
      ccfg, flex::worst_checkpoint_energy(cm, device.cost()) + 5e-6, 3.0);
  auto rt = flex::make_flex_runtime();

  int correct = 0, completed = 0;
  constexpr int kWindows = 10;
  double total_on = 0.0, total_off = 0.0;
  for (int i = 0; i < kWindows; ++i) {
    const auto& x = rad_out.data.test.x[static_cast<std::size_t>(i)];
    const auto qin = quant::quantize_input(rad_out.qmodel, x);
    const auto st = rt->infer(device, cm, qin, opts);
    if (!st.completed()) continue;
    ++completed;
    total_on += st.on_seconds;
    total_off += st.off_seconds;
    const auto logits = std::vector<float>(st.output.begin(), st.output.end());
    if (train::argmax(logits) == rad_out.data.test.y[static_cast<std::size_t>(i)]) ++correct;
  }
  std::printf(
      "[HAR] classified %d/%d windows under kinetic harvesting (%d correct),\n"
      "      mean on-time %.2f ms per window, mean recharge gap %.2f ms\n",
      completed, kWindows, correct, 1e3 * total_on / completed, 1e3 * total_off / completed);
  return 0;
}
