// Fig. 3 walk-through: the on-device dataflow of a LeNet-5-style model.
// Prints, per layer, what ACE plans: which circular activation buffer is
// read/written, the SRAM staging involved, the execution engine
// (LEA MAC / LEA FFT / CPU-direct), and the measured per-layer cost under
// continuous power — making the paper's dataflow figure inspectable.

#include <cstdio>
#include <iostream>

#include "core/ace/compiled_model.h"
#include "core/ace/kernels.h"
#include "models/zoo.h"
#include "power/continuous.h"
#include "quant/quantize.h"
#include "util/table.h"

int main() {
  using namespace ehdnn;
  Rng rng(3);
  nn::Model lenet = models::make_lenet5(rng);

  std::vector<nn::Tensor> calib;
  for (int i = 0; i < 4; ++i) {
    nn::Tensor t({1, 28, 28});
    for (std::size_t j = 0; j < t.size(); ++j) {
      t[j] = static_cast<float>(rng.uniform(-0.9, 0.9));
    }
    calib.push_back(std::move(t));
  }
  const auto qm = quant::quantize(lenet, calib, {1, 28, 28});

  dev::Device device;
  power::ContinuousPower supply;
  device.attach_supply(&supply);
  const auto cm = ace::compile(qm, device);

  std::printf("LeNet-5 dataflow (Fig. 3). FRAM: act A @%zu, act B @%zu (%zu words each), "
              "weights %zu KiB. SRAM plan: %zu of %zu words.\n\n",
              cm.act_a, cm.act_b, cm.act_words, qm.weight_bytes() / 1024,
              cm.sram.total_words, device.sram().size_words());

  // Run layer by layer, charging costs per layer.
  std::vector<fx::q15_t> input(qm.layers.front().in_size());
  for (auto& v : input) v = static_cast<fx::q15_t>(rng.next_u64());
  for (std::size_t i = 0; i < input.size(); ++i) device.fram().poke(cm.act_a + i, input[i]);

  Table t({"Layer", "Engine", "Reads", "Writes", "Units", "Cycles", "Energy (uJ)"});
  for (std::size_t l = 0; l < qm.layers.size(); ++l) {
    const auto& q = qm.layers[l];
    const char* engine = "CPU direct (no SRAM staging)";
    switch (q.kind) {
      case quant::QKind::kConv2D:
      case quant::QKind::kConv1D: engine = "LEA MAC (window gather, Fig. 4)"; break;
      case quant::QKind::kBcmDense: engine = "LEA FFT->CMUL->IFFT (Alg. 1)"; break;
      case quant::QKind::kDense: engine = "LEA MAC (chunked rows)"; break;
      default: break;
    }
    const auto before = device.trace().snapshot();
    ace::ExecCtx ctx{device, cm, l, cm.act_in(l), cm.act_out(l),
                     dsp::FftScaling::kBlockFloat, nullptr};
    ace::UnitHooks hooks;
    ace::run_layer(ctx, 0, hooks);
    const auto d = device.trace().delta(before);
    t.add_row({std::string(quant::kind_name(q.kind)), engine,
               cm.act_in(l) == cm.act_a ? "act A" : "act B",
               cm.act_out(l) == cm.act_a ? "act A" : "act B",
               std::to_string(ace::unit_count(q)), Table::num(d.cycles, 0),
               Table::num(d.energy * 1e6, 2)});
  }
  t.print(std::cout);
  std::printf("\nNote how the two activation buffers alternate (circular reuse, Fig. 5),\n"
              "conv dominates the budget, and the BCM FC is comparatively free — the\n"
              "paper's observation that \"FC layers run extremely fast\" under ACE.\n");
  return 0;
}
